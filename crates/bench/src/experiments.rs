//! The experiment implementations behind the `EXPERIMENTS.md` tables.
//!
//! One function per experiment id (see `DESIGN.md` §3); each returns a
//! [`Table`] that the corresponding binary prints. The criterion benches
//! reuse the same entry points with reduced sweep sizes.

use ho_core::adversary::{Adversary, EventuallyGood, RandomLoss};
use ho_core::algorithms::OneThirdRule;
use ho_core::executor::RoundExecutor;
use ho_core::predicate::{Potr, PotrRestricted, Predicate};
use ho_core::process::{ProcessId, ProcessSet};
use ho_core::round::Round;
use ho_core::translation::Translated;
use ho_predicates::alg2::Alg2Program;
use ho_predicates::bounds::BoundParams;
use ho_predicates::measure::{
    measure_alg2_space_uniform, measure_alg3_kernel, measure_full_stack, Scenario,
};
use ho_predicates::record::SystemTrace;
use ho_sim::{
    BadPeriodConfig, GoodKind, Period, PeriodKind, Schedule, SimConfig, Simulator, TimePoint,
};

use crate::table::{f1, f2, of1, Table};

/// Aggregate of a seed sweep of one measurement configuration.
#[derive(Clone, Copy, Debug)]
pub struct SweepStats {
    /// Runs attempted.
    pub runs: usize,
    /// Runs that achieved the target before the deadline.
    pub achieved: usize,
    /// Worst (max) empirical good-period length over achieving runs.
    pub max_len: f64,
    /// Mean empirical length over achieving runs.
    pub mean_len: f64,
    /// The theorem bound.
    pub bound: f64,
}

impl SweepStats {
    fn from_lengths(lengths: &[f64], runs: usize, bound: f64) -> Self {
        let achieved = lengths.len();
        let max_len = lengths.iter().copied().fold(0.0, f64::max);
        let mean_len = if achieved == 0 {
            0.0
        } else {
            lengths.iter().sum::<f64>() / achieved as f64
        };
        SweepStats {
            runs,
            achieved,
            max_len,
            mean_len,
            bound,
        }
    }

    /// `max_len / bound` — how tight the worst run is against the theorem.
    #[must_use]
    pub fn tightness(&self) -> f64 {
        if self.bound == 0.0 {
            0.0
        } else {
            self.max_len / self.bound
        }
    }
}

/// Sweep driver for the Algorithm 2 measurements (E3 / E5).
#[must_use]
pub fn sweep_alg2(params: BoundParams, x: u64, initial: bool, seeds: u64) -> SweepStats {
    let pi0 = ProcessSet::full(params.n);
    let mut lengths = Vec::new();
    let mut bound = 0.0;
    for seed in 0..seeds {
        let scenario = if initial {
            Scenario::Initial
        } else {
            Scenario::rough(50.0 + 7.0 * seed as f64)
        };
        let m = measure_alg2_space_uniform(params, pi0, x, scenario, seed);
        bound = m.bound;
        if let Some(len) = m.empirical_length() {
            lengths.push(len);
        }
    }
    SweepStats::from_lengths(&lengths, seeds as usize, bound)
}

/// Sweep driver for the Algorithm 3 measurements (E6 / E7).
#[must_use]
pub fn sweep_alg3(params: BoundParams, f: usize, x: u64, initial: bool, seeds: u64) -> SweepStats {
    let mut lengths = Vec::new();
    let mut bound = 0.0;
    for seed in 0..seeds {
        let scenario = if initial {
            Scenario::Initial
        } else {
            Scenario::rough(50.0 + 7.0 * seed as f64)
        };
        let m = measure_alg3_kernel(params, f, x, scenario, seed);
        bound = m.bound;
        if let Some(len) = m.empirical_length() {
            lengths.push(len);
        }
    }
    SweepStats::from_lengths(&lengths, seeds as usize, bound)
}

// ---------------------------------------------------------------------
// T1 — Table 1: the predicates paired with OneThirdRule.

/// T1: empirical validation of Theorems 1 and 2 over randomized runs — when
/// a trace witnesses `P_otr` (resp. `P_otr^restr`), OneThirdRule has decided
/// (resp. `Π0` has); OTR never violates safety either way.
#[must_use]
pub fn table1_predicates(n: usize, trials: u64) -> Table {
    let mut t = Table::new(
        format!("Table 1 — ⟨OTR, P_otr⟩ and ⟨OTR, P_otr^restr⟩ (n = {n}, {trials} runs each)"),
        &[
            "adversary",
            "runs",
            "P_otr",
            "P_otr^restr",
            "decided|P_otr",
            "safety-violations",
        ],
    );
    let full = ProcessSet::full(n);
    let quorum = ProcessSet::from_indices(0..(2 * n / 3 + 1));
    type AdversaryFactory = Box<dyn Fn(u64) -> Box<dyn Adversary>>;
    let cases: Vec<(&str, AdversaryFactory)> = vec![
        (
            "eventually-good(Π)",
            Box::new(move |seed| Box::new(EventuallyGood::new(6, full, 0.7, seed))),
        ),
        (
            "eventually-good(Π0)",
            Box::new(move |seed| Box::new(EventuallyGood::new(6, quorum, 0.7, seed))),
        ),
        (
            "random-loss(0.5)",
            Box::new(|seed| Box::new(RandomLoss::new(0.5, seed))),
        ),
    ];
    for (name, mk) in cases {
        let mut otr_holds = 0u64;
        let mut restr_holds = 0u64;
        let mut decided_given_otr = 0u64;
        let mut violations = 0u64;
        for seed in 0..trials {
            let mut adv = mk(seed);
            let mut exec = RoundExecutor::new(OneThirdRule::new(n), (0..n as u64).collect());
            if exec.run(&mut adv, 14).is_err() {
                violations += 1;
                continue;
            }
            let trace = exec.trace();
            let otr = Potr.holds(trace);
            let restr = PotrRestricted.holds(trace);
            otr_holds += u64::from(otr);
            restr_holds += u64::from(restr);
            if otr && exec.decisions().iter().all(Option::is_some) {
                decided_given_otr += 1;
            }
        }
        t.row(vec![
            name.to_owned(),
            trials.to_string(),
            otr_holds.to_string(),
            restr_holds.to_string(),
            format!("{decided_given_otr}/{otr_holds}"),
            violations.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E3 / E5 — Theorems 3 and 5 (Algorithm 2 good-period lengths).

/// E3: measured vs Theorem 3 (non-initial π0-down good periods), sweeping
/// `x` and `n`.
#[must_use]
pub fn thm3_table(phi: f64, delta: f64, seeds: u64) -> Table {
    let mut t = Table::new(
        format!("Theorem 3 — Alg. 2, non-initial good period (φ={phi}, δ={delta})"),
        &[
            "n",
            "x",
            "bound",
            "measured-max",
            "measured-mean",
            "max/bound",
            "achieved",
        ],
    );
    for n in [4usize, 7, 10] {
        for x in [1u64, 2, 4] {
            let params = BoundParams::new(n, phi, delta);
            let s = sweep_alg2(params, x, false, seeds);
            t.row(vec![
                n.to_string(),
                x.to_string(),
                f1(s.bound),
                f1(s.max_len),
                f1(s.mean_len),
                f2(s.tightness()),
                format!("{}/{}", s.achieved, s.runs),
            ]);
        }
    }
    t
}

/// E5: measured vs Theorem 5 (initial good periods) plus the "nice vs
/// not-nice" ratio at each `x`.
#[must_use]
pub fn thm5_table(phi: f64, delta: f64, seeds: u64) -> Table {
    let mut t = Table::new(
        format!("Theorem 5 — Alg. 2, initial good period (φ={phi}, δ={delta})"),
        &[
            "n",
            "x",
            "bound(T5)",
            "measured-max",
            "bound(T3)",
            "T3/T5 bound",
            "T3/T5 measured",
        ],
    );
    for n in [4usize, 7, 10] {
        for x in [2u64, 4] {
            let params = BoundParams::new(n, phi, delta);
            let init = sweep_alg2(params, x, true, seeds);
            let later = sweep_alg2(params, x, false, seeds);
            let measured_ratio = if init.max_len > 0.0 {
                later.max_len / init.max_len
            } else {
                0.0
            };
            t.row(vec![
                n.to_string(),
                x.to_string(),
                f1(init.bound),
                f1(init.max_len),
                f1(later.bound),
                f2(later.bound / init.bound),
                f2(measured_ratio),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// C4 — Corollary 4: P2_otr vs P1/1_otr.

/// One run of the two-short-periods route to `P1/1_otr`: bad, good(L),
/// bad, good(L), bad…; succeeds if a space-uniform round completes in the
/// first good period and a kernel round in the second.
fn p11otr_two_periods_achieved(params: BoundParams, good_len: f64, seed: u64) -> bool {
    let n = params.n;
    let pi0 = ProcessSet::full(n);
    let bad = BadPeriodConfig::default();
    let bad_len = 40.0;
    let g1 = bad_len;
    let g2 = g1 + good_len + bad_len;
    let schedule = Schedule::new(vec![
        Period {
            start: TimePoint::ZERO,
            kind: PeriodKind::Bad(bad),
        },
        Period {
            start: TimePoint::new(g1),
            kind: PeriodKind::Good {
                pi0,
                kind: GoodKind::PiDown,
            },
        },
        Period {
            start: TimePoint::new(g1 + good_len),
            kind: PeriodKind::Bad(bad),
        },
        Period {
            start: TimePoint::new(g2),
            kind: PeriodKind::Good {
                pi0,
                kind: GoodKind::PiDown,
            },
        },
        Period {
            start: TimePoint::new(g2 + good_len),
            kind: PeriodKind::Bad(bad),
        },
    ]);
    let cfg = SimConfig::normalized(n, params.phi, params.delta).with_seed(seed);
    let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg2Program::new(
                OneThirdRule::new(n),
                ProcessId::new(p),
                p as u64,
                params.alg2_timeout(),
            )
        })
        .collect();
    let mut sim = Simulator::new(cfg, schedule, programs);
    let mut st = SystemTrace::new(n);
    // Observe incrementally so round-completion timestamps are meaningful.
    sim.run_until(TimePoint::new(g2 + good_len), |s| {
        st.observe(s.programs(), s.now().get());
        false
    });

    // Space-uniform round inside good period 1.
    let su = st
        .find_space_uniform_window(pi0, 1, g1)
        .filter(|(_, t)| *t <= g1 + good_len);
    // Kernel round inside good period 2, at a later round.
    let Some((su_round, _)) = su else {
        return false;
    };
    st.find_kernel_window(pi0, 1, g2)
        .filter(|(r, t)| *r > su_round && *t <= g2 + good_len)
        .is_some()
}

/// C4: the trade-off between one long good period (`P2_otr`) and two
/// shorter ones (`P1/1_otr`).
#[must_use]
pub fn corollary4_table(phi: f64, delta: f64, seeds: u64) -> Table {
    let mut t = Table::new(
        format!("Corollary 4 — P2_otr vs P1/1_otr (φ={phi}, δ={delta})"),
        &[
            "n",
            "P2otr bound (1 period)",
            "P1/1 bound (each of 2)",
            "contiguous saving",
            "P1/1 achieved @bound",
        ],
    );
    for n in [4usize, 7, 10] {
        let params = BoundParams::new(n, phi, delta);
        let each = params.corollary4_p11otr_each();
        // Allow the same observation slack as the Theorem-5 tests.
        let good_len = each + params.delta + params.phi + 1.0;
        let ok = (0..seeds)
            .filter(|&s| p11otr_two_periods_achieved(params, good_len, s))
            .count();
        t.row(vec![
            n.to_string(),
            f1(params.corollary4_p2otr()),
            f1(each),
            f2(params.corollary4_p2otr() / each),
            format!("{ok}/{seeds}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E6 / E7 — Theorems 6 and 7 (Algorithm 3 good-period lengths).

/// E6: measured vs Theorem 6 (non-initial π0-arbitrary good periods).
#[must_use]
pub fn thm6_table(phi: f64, delta: f64, seeds: u64) -> Table {
    let mut t = Table::new(
        format!("Theorem 6 — Alg. 3, non-initial π0-arbitrary good period (φ={phi}, δ={delta})"),
        &[
            "n",
            "f",
            "x",
            "bound",
            "measured-max",
            "max/bound",
            "achieved",
        ],
    );
    for (n, f) in [(4usize, 1usize), (5, 2), (9, 4)] {
        for x in [1u64, 2, 4] {
            let params = BoundParams::new(n, phi, delta);
            let s = sweep_alg3(params, f, x, false, seeds);
            t.row(vec![
                n.to_string(),
                f.to_string(),
                x.to_string(),
                f1(s.bound),
                f1(s.max_len),
                f2(s.tightness()),
                format!("{}/{}", s.achieved, s.runs),
            ]);
        }
    }
    t
}

/// E7: measured vs Theorem 7 (initial π0-arbitrary good periods), plus the
/// initial/non-initial comparison for Algorithm 3.
#[must_use]
pub fn thm7_table(phi: f64, delta: f64, seeds: u64) -> Table {
    let mut t = Table::new(
        format!("Theorem 7 — Alg. 3, initial good period (φ={phi}, δ={delta})"),
        &[
            "n",
            "f",
            "x",
            "bound(T7)",
            "measured-max",
            "bound(T6)",
            "T6/T7 bound",
        ],
    );
    for (n, f) in [(4usize, 1usize), (5, 2), (9, 4)] {
        for x in [2u64, 4] {
            let params = BoundParams::new(n, phi, delta);
            let s = sweep_alg3(params, f, x, true, seeds);
            t.row(vec![
                n.to_string(),
                f.to_string(),
                x.to_string(),
                f1(params.theorem7(x)),
                f1(s.max_len),
                f1(params.theorem6(x)),
                f2(params.theorem6(x) / params.theorem7(x)),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// E8 — the full stack (§4.2.2c).

/// E8: consensus latency of the full stack (Alg. 3 + Alg. 4 + OTR) in a
/// π0-arbitrary good period, against the `2f+3`-round bound; sweeps `f`.
#[must_use]
pub fn full_stack_table(phi: f64, delta: f64, seeds: u64) -> Table {
    let mut t = Table::new(
        format!("§4.2.2(c) — full stack consensus (φ={phi}, δ={delta})"),
        &[
            "n",
            "f",
            "bound(2f+3 rounds)",
            "decided-max",
            "decided-mean",
            "agreement",
            "achieved",
        ],
    );
    for (n, f) in [(4usize, 1usize), (5, 1), (7, 2), (10, 3)] {
        let params = BoundParams::new(n, phi, delta);
        let mut lengths = Vec::new();
        let mut bound = 0.0;
        let mut agreement = true;
        for seed in 0..seeds {
            let out =
                measure_full_stack(params, f, Scenario::rough(40.0 + 5.0 * seed as f64), seed);
            bound = out.measurement.bound;
            if let Some(len) = out.measurement.empirical_length() {
                lengths.push(len);
            }
            let vals: Vec<u64> = out.decisions.iter().flatten().copied().collect();
            agreement &= vals.windows(2).all(|w| w[0] == w[1]);
        }
        let s = SweepStats::from_lengths(&lengths, seeds as usize, bound);
        t.row(vec![
            n.to_string(),
            f.to_string(),
            f1(bound),
            f1(s.max_len),
            f1(s.mean_len),
            agreement.to_string(),
            format!("{}/{}", s.achieved, s.runs),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// T8 — the P_k → P_su translation (Theorem 8).

/// T8: model-level check of Theorem 8 — under per-round `P_k(Π0)` HO
/// assignments, completed macro-rounds of the translation should be space
/// uniform over `Π0`. Compares the paper's `f+1`-round translation with the
/// corrected `f+2`-round variant (see the erratum note on
/// [`Translated`]): at `n = 2f+1` the printed version admits rare
/// non-uniform macro-rounds; the corrected one never does.
#[must_use]
pub fn translation_table(trials: u64) -> Table {
    let mut t = Table::new(
        "Theorem 8 — kernel rounds ⇒ space-uniform macro-rounds",
        &[
            "n",
            "f",
            "variant",
            "runs",
            "macro-rounds",
            "uniform",
            "⊇Π0",
            "violations",
        ],
    );
    struct KernelAdv {
        pi0: ProcessSet,
        chaos: RandomLoss,
    }
    impl Adversary for KernelAdv {
        fn fill_ho_sets(&mut self, r: Round, ho: &mut [ProcessSet]) {
            self.chaos.fill_ho_sets(r, ho);
            for (p, slot) in ho.iter_mut().enumerate() {
                if self.pi0.contains(ProcessId::new(p)) {
                    *slot = self.pi0.union(*slot);
                }
            }
        }
    }
    for (n, f) in [(3usize, 1usize), (5, 2), (7, 3), (9, 4)] {
        for paper_variant in [true, false] {
            let pi0 = ProcessSet::from_indices(f..n);
            let mut macro_rounds = 0u64;
            let mut uniform = 0u64;
            let mut contains = 0u64;
            let mut violations = 0u64;
            for seed in 0..trials {
                let alg = if paper_variant {
                    Translated::new(OneThirdRule::new(n), f)
                } else {
                    Translated::corrected(OneThirdRule::new(n), f)
                };
                let per = alg.rounds_per_macro();
                let mut exec = RoundExecutor::new(alg, (0..n as u64).collect());
                let mut adv = KernelAdv {
                    pi0,
                    chaos: RandomLoss::new(0.6, seed),
                };
                let mut bad_run = false;
                for m in 1..=per * 6 {
                    if exec.step(&mut adv).is_err() {
                        violations += 1;
                        bad_run = true;
                        break;
                    }
                    if m % per != 0 {
                        continue;
                    }
                    let news: Vec<ProcessSet> = pi0
                        .iter()
                        .filter_map(|p| exec.states()[p.index()].last_new_ho)
                        .collect();
                    if news.len() == pi0.len() {
                        macro_rounds += 1;
                        if news.windows(2).all(|w| w[0] == w[1]) {
                            uniform += 1;
                        }
                        if news.iter().all(|s| s.is_superset(pi0)) {
                            contains += 1;
                        }
                    }
                }
                let _ = bad_run;
            }
            t.row(vec![
                n.to_string(),
                f.to_string(),
                if paper_variant {
                    "paper f+1"
                } else {
                    "corrected f+2"
                }
                .to_owned(),
                trials.to_string(),
                macro_rounds.to_string(),
                uniform.to_string(),
                contains.to_string(),
                violations.to_string(),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// A1 — failure detectors vs the HO model.

/// A1: Chandra–Toueg vs Aguilera et al. vs the HO stack across fault
/// scenarios: decisions, latency, messages, stable-storage writes.
#[must_use]
pub fn fd_comparison_table(seeds: u64) -> Table {
    use ho_fd::harness::{run_aguilera, run_chandra_toueg, FdScenario};

    let mut t = Table::new(
        "Appendix A — FD baselines vs the HO model (n = 3)",
        &[
            "scenario",
            "algorithm",
            "decided",
            "latency",
            "msgs",
            "stable-writes",
        ],
    );
    let n = 3;
    type ScenarioFactory = Box<dyn Fn(u64) -> FdScenario>;
    let scenarios: Vec<(&str, ScenarioFactory)> = vec![
        (
            "failure-free",
            Box::new(move |s| FdScenario::failure_free(n, s)),
        ),
        (
            "one crash",
            Box::new(move |s| FdScenario::one_crash(n, 0, s)),
        ),
        (
            "crash-recovery",
            Box::new(move |s| FdScenario::crash_recovery(n, 1, 0.4, 30.0, s)),
        ),
        ("loss 30%", Box::new(move |s| FdScenario::lossy(n, 0.3, s))),
    ];
    for (name, mk) in &scenarios {
        let mut agg = |label: &str, run: &dyn Fn(&FdScenario) -> ho_fd::FdRunOutcome| {
            let mut decided = 0usize;
            let mut total = 0usize;
            let mut lat = Vec::new();
            let mut msgs = 0u64;
            let mut writes = 0u64;
            for seed in 0..seeds {
                let sc = mk(seed);
                let out = run(&sc);
                decided += out.decided_count();
                total += n;
                if let Some(tm) = out.all_decided_at {
                    lat.push(tm);
                }
                msgs += out.messages_sent;
                writes += out.stable_writes;
            }
            let mean_lat = if lat.is_empty() {
                None
            } else {
                Some(lat.iter().sum::<f64>() / lat.len() as f64)
            };
            t.row(vec![
                (*name).to_owned(),
                label.to_owned(),
                format!("{decided}/{total}"),
                of1(mean_lat),
                (msgs / seeds).to_string(),
                (writes / seeds).to_string(),
            ]);
        };
        agg("CT (◇S, crash-stop)", &run_chandra_toueg);
        agg("Aguilera (◇Su, cr-rec)", &run_aguilera);
    }
    // The HO side: OneThirdRule at the model level, identical code for
    // crash-stop and crash-recovery (§3.3) — rounds to decide.
    let mut ho_row = |scenario: &str, mk: &dyn Fn(u64) -> Box<dyn Adversary>| {
        let mut decided = 0usize;
        let mut total = 0usize;
        let mut rounds = Vec::new();
        for seed in 0..seeds {
            let mut adv = mk(seed);
            let mut exec = RoundExecutor::new(OneThirdRule::new(n), vec![10, 11, 12]);
            if let Ok(r) = exec.run_until_decided_in(ProcessSet::from_indices(0..n), &mut adv, 200)
            {
                rounds.push(r.get() as f64);
            }
            decided += exec.decisions().iter().flatten().count();
            total += n;
        }
        let mean = if rounds.is_empty() {
            None
        } else {
            Some(rounds.iter().sum::<f64>() / rounds.len() as f64)
        };
        t.row(vec![
            scenario.to_owned(),
            "HO OTR (rounds)".to_owned(),
            format!("{decided}/{total}"),
            of1(mean),
            "-".to_owned(),
            "0".to_owned(),
        ]);
    };
    ho_row("failure-free", &|_| {
        Box::new(ho_core::adversary::FullDelivery)
    });
    ho_row("crash-recovery", &|_| {
        Box::new(ho_core::adversary::CrashRecovery::new(
            3,
            &[(1, Round(2), Round(5))],
        ))
    });
    ho_row("loss 30%", &|seed| Box::new(RandomLoss::new(0.3, seed)));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_runs_clean() {
        let t = table1_predicates(4, 20);
        assert_eq!(t.len(), 3);
        let r = t.render();
        // No safety violations, ever (last column of each data row).
        for line in r.lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if !cells.is_empty() {
                assert_eq!(*cells.last().unwrap(), "0", "violations in: {line}");
            }
        }
    }

    #[test]
    fn sweep_alg2_achieves_within_bound() {
        let params = BoundParams::new(4, 1.0, 2.0);
        let s = sweep_alg2(params, 2, true, 3);
        assert_eq!(s.achieved, 3);
        // Tightness can exceed 1 only by the observation slack.
        assert!(s.max_len <= s.bound + params.delta + params.phi + 1.0);
    }

    #[test]
    fn p11otr_route_works() {
        let params = BoundParams::new(4, 1.0, 2.0);
        let good_len = params.corollary4_p11otr_each() + params.delta + params.phi + 1.0;
        let ok = (0..3)
            .filter(|&s| p11otr_two_periods_achieved(params, good_len, s))
            .count();
        assert!(ok >= 2, "two short periods implement P1/1_otr ({ok}/3)");
    }

    #[test]
    fn translation_table_confirms_theorem8() {
        let t = translation_table(20);
        let r = t.render();
        for line in r.lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.is_empty() {
                continue;
            }
            // Layout: n f variant(2 words) runs macro uniform ⊇Π0 violations
            let (macro_r, uniform, contains, viol) = (cells[5], cells[6], cells[7], cells[8]);
            assert_eq!(viol, "0", "violations: {line}");
            assert_eq!(macro_r, contains, "kernel containment: {line}");
            if line.contains("corrected") {
                assert_eq!(
                    macro_r, uniform,
                    "corrected variant must be uniform: {line}"
                );
            }
        }
    }
}
