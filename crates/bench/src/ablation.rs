//! Ablations of the predicate-layer design choices.
//!
//! The paper fixes three design decisions without exploring alternatives;
//! these experiments probe each one. Findings (see `EXPERIMENTS.md`):
//!
//! * **Algorithm 2's timeout** `⌈2δ + (n+2)φ⌉` is load-bearing: at 0.5×
//!   the achievement rate of `P_su` collapses (rounds end before the
//!   slowest admissible message arrives); at ≥ 0.9× it is perfect. The
//!   constant is tight-ish, not conservative.
//! * **Algorithm 3's INIT re-announcement** (every step vs once per round)
//!   is a *worst-case* defence: an INIT lost in a bad period could wedge a
//!   round with the once-only variant, but randomized runs merely get
//!   slower — some other `π0` process's progress rescues the wedge via
//!   higher-round ROUND messages.
//! * **Algorithm 3's round-robin reception policy** is likewise a
//!   worst-case defence. With the newest-first tie-break (see
//!   `ho_sim::program::policy`) the simple highest-round-first policy
//!   performs the same in randomized runs, including against 20×-fast
//!   outsiders; what *does* starve progress is an oldest-first tie-break —
//!   the reproduction bug documented in `DESIGN.md` §6.3.

use ho_core::algorithms::OneThirdRule;
use ho_core::process::{ProcessId, ProcessSet};
use ho_predicates::alg2::Alg2Program;
use ho_predicates::alg3::{Alg3Policy, Alg3Program, InitResend};
use ho_predicates::bounds::BoundParams;
use ho_predicates::record::SystemTrace;
use ho_sim::{BadPeriodConfig, GoodKind, Schedule, SimConfig, Simulator, StepTiming, TimePoint};

use crate::table::{f1, Table};

/// Outcome of one ablation cell: how many seeds achieved the target, and
/// the mean time (after the good-period start) for those that did.
#[derive(Clone, Copy, Debug)]
pub struct AblationCell {
    /// Achieving runs.
    pub achieved: usize,
    /// Total runs.
    pub runs: usize,
    /// Mean achievement time over achieving runs.
    pub mean_time: f64,
}

impl AblationCell {
    fn gather(results: impl Iterator<Item = Option<f64>>) -> Self {
        let all: Vec<Option<f64>> = results.collect();
        let ok: Vec<f64> = all.iter().flatten().copied().collect();
        AblationCell {
            achieved: ok.len(),
            runs: all.len(),
            mean_time: if ok.is_empty() {
                0.0
            } else {
                ok.iter().sum::<f64>() / ok.len() as f64
            },
        }
    }

    fn cells(&self) -> [String; 2] {
        [
            format!("{}/{}", self.achieved, self.runs),
            if self.achieved == 0 {
                "-".to_owned()
            } else {
                f1(self.mean_time)
            },
        ]
    }
}

/// One Algorithm-2 run with a scaled timeout; returns the time (relative to
/// the good-period start) at which `P_su(Π, ·, ·+1)` completed, if it did.
fn alg2_run_with_timeout(params: BoundParams, timeout: u64, seed: u64) -> Option<f64> {
    let n = params.n;
    let pi0 = ProcessSet::full(n);
    let good_start = 40.0;
    let cfg = SimConfig::normalized(n, params.phi, params.delta)
        .with_seed(seed)
        .with_step_timing(StepTiming::Jittered);
    let schedule = Schedule::bad_then_good(
        BadPeriodConfig::lossy(0.5),
        TimePoint::new(good_start),
        pi0,
        GoodKind::PiDown,
    );
    let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
        .map(|p| Alg2Program::new(OneThirdRule::new(n), ProcessId::new(p), p as u64, timeout))
        .collect();
    let mut sim = Simulator::new(cfg, schedule, programs);
    let mut st = SystemTrace::new(n);
    let mut hit = None;
    let deadline = good_start + params.theorem3(2) * 6.0;
    sim.run_until(TimePoint::new(deadline), |s| {
        st.observe(s.programs(), s.now().get());
        hit = st.find_space_uniform_window(pi0, 2, good_start);
        hit.is_some()
    });
    hit.map(|(_, t)| t - good_start)
}

/// Ablation 1: Algorithm 2's timeout constant.
#[must_use]
pub fn ablation_alg2_timeout(params: BoundParams, seeds: u64) -> Table {
    let mut t = Table::new(
        format!(
            "Ablation — Alg. 2 timeout factor (n={}, φ={}, δ={}; nominal ⌈2δ+(n+2)φ⌉ = {})",
            params.n,
            params.phi,
            params.delta,
            params.alg2_timeout()
        ),
        &[
            "timeout-factor",
            "timeout",
            "P_su(x=2) achieved",
            "mean time",
        ],
    );
    for factor in [0.5, 0.7, 0.9, 1.0, 1.5] {
        let timeout = ((params.alg2_timeout() as f64) * factor).round().max(1.0) as u64;
        let cell =
            AblationCell::gather((0..seeds).map(|s| alg2_run_with_timeout(params, timeout, s)));
        let [ach, time] = cell.cells();
        t.row(vec![format!("{factor:.1}"), timeout.to_string(), ach, time]);
    }
    t
}

/// One Algorithm-3 run with the given knobs; returns the time (relative to
/// the good-period start) at which `P_k(π0, ·, ·+1)` completed.
fn alg3_run(
    params: BoundParams,
    f: usize,
    resend: InitResend,
    policy: Alg3Policy,
    bad: BadPeriodConfig,
    seed: u64,
) -> Option<f64> {
    let n = params.n;
    let pi0 = ProcessSet::from_indices(0..n - f);
    let good_start = 60.0;
    let cfg = SimConfig::normalized(n, params.phi, params.delta).with_seed(seed);
    let schedule =
        Schedule::bad_then_good(bad, TimePoint::new(good_start), pi0, GoodKind::PiArbitrary);
    let programs: Vec<Alg3Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg3Program::new(
                OneThirdRule::new(n),
                ProcessId::new(p),
                p as u64,
                f,
                params.alg3_timeout(),
            )
            .with_resend(resend)
            .with_policy(policy)
        })
        .collect();
    let mut sim = Simulator::new(cfg, schedule, programs);
    let mut st = SystemTrace::new(n);
    let mut hit = None;
    let deadline = good_start + params.theorem6(2) * 6.0;
    sim.run_until(TimePoint::new(deadline), |s| {
        st.observe(s.programs(), s.now().get());
        hit = st.find_kernel_window(pi0, 2, good_start);
        hit.is_some()
    });
    hit.map(|(_, t)| t - good_start)
}

/// Ablation 2: INIT re-announcement (every step vs once per round).
#[must_use]
pub fn ablation_init_resend(params: BoundParams, f: usize, seeds: u64) -> Table {
    let mut t = Table::new(
        format!(
            "Ablation — Alg. 3 INIT re-announcement (n={}, f={f}, lossy bad period)",
            params.n
        ),
        &["resend", "P_k(x=2) achieved", "mean time"],
    );
    for (name, resend) in [
        ("every step (paper)", InitResend::EveryStep),
        ("once per round", InitResend::Once),
    ] {
        let bad = BadPeriodConfig::lossy(0.7);
        let cell = AblationCell::gather(
            (0..seeds).map(|s| alg3_run(params, f, resend, Alg3Policy::RoundRobin, bad, s)),
        );
        let [ach, time] = cell.cells();
        t.row(vec![name.to_owned(), ach, time]);
    }
    t
}

/// Ablation 3: reception policy, with arbitrarily fast outsiders.
#[must_use]
pub fn ablation_policy(params: BoundParams, f: usize, seeds: u64) -> Table {
    let mut t = Table::new(
        format!(
            "Ablation — Alg. 3 reception policy (n={}, f={f}, π̄0 up to 20× fast)",
            params.n
        ),
        &["policy", "P_k(x=2) achieved", "mean time"],
    );
    // Fast outsiders with low loss: they stay alive, race ahead in round
    // numbers during the bad period, and flood the good period.
    let bad = BadPeriodConfig {
        loss: 0.2,
        crash_prob: 0.0,
        fast_factor: 20.0,
        slow_factor: 1.0,
        extra_delay_factor: 0.5,
        ..BadPeriodConfig::calm()
    };
    for (name, policy) in [
        ("round-robin (paper)", Alg3Policy::RoundRobin),
        ("highest-first", Alg3Policy::HighestFirst),
    ] {
        let cell = AblationCell::gather(
            (0..seeds).map(|s| alg3_run(params, f, InitResend::EveryStep, policy, bad, s)),
        );
        let [ach, time] = cell.cells();
        t.row(vec![name.to_owned(), ach, time]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_timeout_achieves() {
        let params = BoundParams::new(4, 1.0, 2.0);
        let cell = AblationCell::gather(
            (0..3).map(|s| alg2_run_with_timeout(params, params.alg2_timeout(), s)),
        );
        assert_eq!(cell.achieved, 3, "{cell:?}");
    }

    #[test]
    fn paper_resend_always_achieves() {
        let params = BoundParams::new(4, 1.0, 2.0);
        for seed in 0..3 {
            assert!(
                alg3_run(
                    params,
                    1,
                    InitResend::EveryStep,
                    Alg3Policy::RoundRobin,
                    BadPeriodConfig::lossy(0.7),
                    seed,
                )
                .is_some(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn round_robin_beats_highest_first_under_fast_outsiders() {
        let params = BoundParams::new(4, 1.0, 2.0);
        let bad = BadPeriodConfig {
            loss: 0.2,
            crash_prob: 0.0,
            fast_factor: 20.0,
            slow_factor: 1.0,
            extra_delay_factor: 0.5,
            ..BadPeriodConfig::calm()
        };
        let rr = AblationCell::gather((0..4).map(|s| {
            alg3_run(
                params,
                1,
                InitResend::EveryStep,
                Alg3Policy::RoundRobin,
                bad,
                s,
            )
        }));
        assert_eq!(rr.achieved, 4, "round-robin must always achieve: {rr:?}");
    }
}
