//! # ho-harness — the parallel scenario-sweep harness
//!
//! Executes thousands of (algorithm × adversary × size × seed) consensus
//! scenarios concurrently on the round-synchronous machine, collecting
//! per-scenario verdicts — decided round, safety violations, message-cost
//! accounting — into an aggregated, JSON-serializable [`SweepReport`].
//!
//! The sweep rides on the [`SendPlan`](ho_core::SendPlan) kernel: every
//! scenario's message costs are recorded both as the kernel's payload
//! allocations (`O(n)` per broadcast round) and as the clone count the old
//! per-destination scheme would have paid (`O(n²)`), so
//! `BENCH_sweep.json` tracks the refactor's effect release over release.
//!
//! ```
//! use ho_harness::{AdversarySpec, AlgorithmSpec, Sweep};
//!
//! // 300 scenarios across every core: three algorithms, fifty seeds of
//! // chaos-then-good and fifty of clean delivery. (UniformVoting is kept
//! // out of empty-kernel chaos — its safety predicate P_nek forbids it,
//! // and the sweep *does* catch the violation if you try.)
//! let report = Sweep::new()
//!     .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
//!     .adversaries([
//!         AdversarySpec::FullDelivery,
//!         AdversarySpec::EventuallyGood { bad_rounds: 4, loss: 0.5 },
//!     ])
//!     .sizes([4])
//!     .seeds(0..50)
//!     .run();
//! assert_eq!(report.scenarios, 200);
//! assert_eq!(report.violations, 0);
//! assert!(report.verdicts.iter().all(|v| v.all_decided()));
//! ```

pub mod json;
pub mod par;
pub mod report;
pub mod rsm;
pub mod scenario;
pub mod sim;
pub mod sweep;

pub use json::Json;
pub use par::{
    default_threads, par_map, par_map_weighted_with_policy, par_map_with, par_map_with_policy,
    ChunkPolicy,
};
pub use report::{
    chunk_policy_json, forensic_artifact_json, predicate_totals_json, repro_command,
    rsm_report_json, rsm_verdict_json, sim_report_json, sim_verdict_json, telemetry_event_json,
    telemetry_summary_json, verdict_json, JsonFields, MessageTotals, PredicateTotals, SweepReport,
};
pub use rsm::{RsmCell, RsmCellKey, RsmReport, RsmScenario, RsmSweep, RsmTotals, RsmVerdict};
pub use scenario::{AdversarySpec, AlgorithmSpec, Scenario, ScenarioScratch, Verdict};
pub use sim::{ImplementationSpec, LinkFaultSpec, SimReport, SimScenario, SimSweep, SimVerdict};
pub use sweep::Sweep;

// The per-scenario predicate statistics carried by monitored verdicts.
pub use ho_predicates::monitor::PredicateSummary;

// The rsm layer's workload shapes (axis values for `RsmSweep`).
pub use ho_rsm::WorkloadSpec;

// The contact-plan link schedules (axis values for every sweep layer).
pub use ho_core::contact::ContactPlan;

// The flight-recorder / metrics types carried by telemetry-on verdicts.
pub use ho_core::telemetry::{Event, EventKind, Phase, Telemetry, TelemetrySummary};
