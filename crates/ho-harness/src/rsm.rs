//! The rsm layer of the sweep: replicated-log scenarios on the
//! [`LogDriver`](ho_rsm::LogDriver).
//!
//! Where the model-layer [`Sweep`](crate::Sweep) asks "does one consensus
//! instance stay safe and decide?", the rsm sweep asks the *service*
//! question: under a fault environment, how many client commands does the
//! replicated log order per second, at what latency-in-rounds, with how
//! many rounds per slot — and do all replicas apply identical prefixes
//! with every command exactly once? The grid therefore gains two axes:
//! the **pipeline depth** (slots in flight) and the **workload** (command
//! generator shape).
//!
//! UniformVoting needs care here: pipelined slots open at different
//! global rounds on different replicas, so even a kernel-preserving
//! adversary cannot guarantee a per-instance non-empty kernel — a late
//! joiner is silent for the instance's early rounds. The canonical grids
//! (see `crates/bench`) sweep UV only under full delivery, where replicas
//! run in lockstep; OTR and LastVoting are safe under everything.

use std::time::Instant;

use ho_core::adversary::Adversary;
use ho_core::executor::{RoundScratch, RunError};
use ho_core::telemetry::{Event, Telemetry, TelemetrySummary};
use ho_rsm::{shard_seed, FlowControl, RsmConfig, ShardedLogDriver, WorkloadSpec};

use crate::par::{default_threads, par_map_weighted_with_policy, ChunkPolicy};
use crate::scenario::{AdversarySpec, AlgorithmSpec, ScenarioScratch};
use ho_core::algorithms::{LastVoting, OneThirdRule, UniformVoting};
use ho_core::HoAlgorithm;

/// One cell of the rsm grid: a fully determined log-service run.
#[derive(Clone, Debug)]
pub struct RsmScenario {
    /// The inner consensus algorithm driving every slot.
    pub algorithm: AlgorithmSpec,
    /// The fault environment.
    pub adversary: AdversarySpec,
    /// Number of replicas (per shard group).
    pub n: usize,
    /// Pipeline depth (slots in flight per replica).
    pub depth: usize,
    /// Number of independent consensus groups the keyspace is partitioned
    /// across (1 = the unsharded service).
    pub shards: usize,
    /// The client workload shape.
    pub workload: WorkloadSpec,
    /// Whether the flow-control stack (slot leases, adaptive batching,
    /// admission backpressure — [`FlowControl::on`]) is enabled.
    pub lease: bool,
    /// The seed deriving workloads and adversary randomness.
    pub seed: u64,
    /// Rounds to run (fixed budget — a log service never "terminates").
    pub rounds: u64,
    /// Runs the scenario with the flight recorder + metrics registry
    /// active on the anchor group (shard 0). Recording only observes —
    /// the verdict is bit-identical to an unrecorded run.
    pub telemetry: bool,
}

impl RsmScenario {
    /// A stable identifier for reports.
    #[must_use]
    pub fn id(&self) -> String {
        format!(
            "rsm/{}/{}/n{}/d{}/S{}/{}/lease{}/s{}",
            self.algorithm.name(),
            self.adversary.name(),
            self.n,
            self.depth,
            self.shards.max(1),
            self.workload.name(),
            u8::from(self.lease),
            self.seed
        )
    }

    /// Executes the scenario to completion and reports the verdict.
    #[must_use]
    pub fn run(&self) -> RsmVerdict {
        self.run_reusing(&mut ScenarioScratch::default())
    }

    /// Executes the scenario reusing a worker-owned scratch (the executor's
    /// type-independent round buffers survive from scenario to scenario).
    #[must_use]
    pub fn run_reusing(&self, scratch: &mut ScenarioScratch) -> RsmVerdict {
        match self.algorithm {
            AlgorithmSpec::OneThirdRule => self.run_with(|_| OneThirdRule::new(self.n), scratch),
            AlgorithmSpec::UniformVoting => self.run_with(|_| UniformVoting::new(self.n), scratch),
            AlgorithmSpec::LastVoting => self.run_with(|_| LastVoting::new(self.n), scratch),
        }
    }

    fn run_with<A>(&self, make: impl FnMut(usize) -> A, scratch: &mut ScenarioScratch) -> RsmVerdict
    where
        A: HoAlgorithm<Value = u64>,
    {
        let shards = self.shards.max(1);
        let start = Instant::now();
        // One independent fault schedule per group, derived from the
        // scenario seed by the same stream split as the workloads
        // (`shard_seed(seed, 0) == seed`, so S=1 reproduces the unsharded
        // adversary exactly).
        let mut adversaries: Vec<Box<dyn Adversary + Send>> = (0..shards)
            .map(|s| self.adversary.build(self.n, shard_seed(self.seed, s)))
            .collect();
        let mut scratches = std::mem::take(&mut scratch.shard_rounds);
        scratches.resize_with(shards, RoundScratch::default);
        let mut cfg = RsmConfig::with_depth(self.depth);
        cfg.flow = if self.lease {
            FlowControl::on()
        } else {
            FlowControl::off()
        };
        let mut driver = ShardedLogDriver::with_scratches(
            make,
            self.workload,
            cfg,
            shards,
            self.seed,
            scratches,
        );
        // The recorder ring lives in the worker scratch and rides the
        // anchor group (shard 0): reset retains the allocation, so a
        // telemetry-on batch allocates the ring exactly once per worker.
        if self.telemetry {
            let mut telemetry = std::mem::take(&mut scratch.telemetry);
            if !telemetry.is_on() {
                telemetry = Telemetry::on();
            }
            telemetry.reset();
            driver.set_telemetry(telemetry);
        }
        // The executor's consensus checker guards slot 0 online; the
        // applied-log oracle checks the whole log afterwards.
        let mut violation = match driver.run(&mut adversaries, self.rounds) {
            Ok(()) => None,
            Err(RunError::Violation(v)) => Some(v.to_string()),
            Err(e @ RunError::MaxRoundsExceeded { .. }) => Some(e.to_string()),
        };
        // Clock the *service*, not the verdict: the oracle and the stats
        // aggregation below are harness work and must not dilute the
        // commands/sec the report tracks.
        let wall_nanos = start.elapsed().as_nanos() as u64;
        let check = driver.check();
        violation = violation.or_else(|| check.violation.clone());
        let stats = driver.service_stats();
        let messages = driver.message_stats();
        // Graceful-degradation accounting for contact-plan scenarios:
        // how many process-rounds the plan kept replicas dark, and how
        // long after the last reconnection the logs took to re-converge.
        let plan = self.adversary.contact_plan();
        let dark_rounds = plan.map_or(0, |p| {
            (0..shards)
                .map(|s| p.dark_rounds(shard_seed(self.seed, s), self.n, self.rounds))
                .sum()
        });
        let converged = stats.min_applied_slots == stats.applied_slots;
        let catch_up_rounds = match plan {
            Some(p) if converged => Some(
                stats
                    .last_convergence_round
                    .map_or(0, |r| r.saturating_sub(p.good_from() - 1)),
            ),
            _ => None,
        };
        // Take the ring back before the driver is consumed; a violated
        // invariant drains it for the forensic artifact.
        let telemetry_handle = driver.take_telemetry();
        let telemetry = telemetry_handle.summary();
        let forensic_events = (violation.is_some() && telemetry_handle.is_on())
            .then(|| telemetry_handle.events().copied().collect());
        let verdict = RsmVerdict {
            algorithm: self.algorithm.name(),
            adversary: self.adversary.name(),
            n: self.n,
            depth: self.depth,
            shards,
            workload: self.workload.name(),
            lease: self.lease,
            seed: self.seed,
            rounds_run: driver.rounds_run(),
            violation,
            slots: check.slots,
            min_slots: check.min_slots,
            noop_slots: check.noop_slots,
            commands: check.commands,
            generated_commands: stats.generated_commands,
            requeued_commands: stats.requeued_commands,
            lease_takeovers: stats.lease_takeovers,
            deferred_commands: stats.deferred_commands,
            hot_generated: stats.hot_generated,
            backfill_entries: stats.backfill_entries,
            divergent_rounds: stats.divergent_rounds,
            dark_rounds,
            catch_up_rounds,
            latency_samples: stats.latencies.len() as u64,
            latency_p50: stats.latency_percentile(50),
            latency_p90: stats.latency_percentile(90),
            latency_p99: stats.latency_percentile(99),
            latency_max: stats.latencies.last().copied(),
            payload_allocs: messages.payload_allocs,
            payload_reuses: messages.payload_reuses,
            delivered_messages: messages.delivered,
            wall_nanos,
            telemetry,
            forensic_events,
        };
        scratch.telemetry = telemetry_handle;
        scratch.shard_rounds = driver.into_scratches();
        verdict
    }
}

/// The outcome of one rsm scenario.
#[derive(Clone, Debug)]
pub struct RsmVerdict {
    /// Inner algorithm name.
    pub algorithm: &'static str,
    /// Adversary name.
    pub adversary: String,
    /// Number of replicas (per shard group).
    pub n: usize,
    /// Pipeline depth.
    pub depth: usize,
    /// Number of consensus groups (1 = unsharded).
    pub shards: usize,
    /// Workload name.
    pub workload: String,
    /// Whether the flow-control stack was enabled for this scenario.
    pub lease: bool,
    /// The scenario seed.
    pub seed: u64,
    /// Rounds executed.
    pub rounds_run: u64,
    /// A safety violation — slot-0 consensus (agreement, integrity,
    /// irrevocability) or applied-log (prefix agreement, exactly-once,
    /// batch integrity) — if one was caught.
    pub violation: Option<String>,
    /// Slots in the longest replica log.
    pub slots: u64,
    /// Slots in the shortest replica log.
    pub min_slots: u64,
    /// No-op slots (decided with an empty batch) in the longest log.
    pub noop_slots: u64,
    /// Client commands ordered by the longest log.
    pub commands: u64,
    /// Commands generated across replicas.
    pub generated_commands: u64,
    /// Commands requeued after losing their slot.
    pub requeued_commands: u64,
    /// Slots batched past the lease by the timeout fallback (0 with
    /// leases off).
    pub lease_takeovers: u64,
    /// Arrivals deferred by workload backpressure (0 without an
    /// admission window).
    pub deferred_commands: u64,
    /// Commands generated on hot keys (skew realisation).
    pub hot_generated: u64,
    /// Backfill entries delivered into replicas' mailboxes — the catch-up
    /// traffic volume.
    pub backfill_entries: u64,
    /// Rounds in which some replica's log trailed the longest (degraded
    /// service rounds).
    pub divergent_rounds: u64,
    /// Process-rounds the contact plan kept replicas dark, summed over
    /// shards (0 for non-contact adversaries).
    pub dark_rounds: u64,
    /// Rounds from the contact plan's permanent reconnection to log
    /// convergence; `None` for non-contact adversaries or when the logs
    /// were still unequal at the end of the run.
    pub catch_up_rounds: Option<u64>,
    /// Latency sample count (one per applied own command).
    pub latency_samples: u64,
    /// Median apply latency in rounds.
    pub latency_p50: Option<u64>,
    /// 90th-percentile apply latency in rounds.
    pub latency_p90: Option<u64>,
    /// 99th-percentile apply latency in rounds.
    pub latency_p99: Option<u64>,
    /// Worst apply latency in rounds.
    pub latency_max: Option<u64>,
    /// Payload constructions under the SendPlan kernel.
    pub payload_allocs: u64,
    /// Constructions served from recycled buffers.
    pub payload_reuses: u64,
    /// Messages delivered into mailboxes.
    pub delivered_messages: u64,
    /// Wall-clock nanoseconds for this scenario.
    pub wall_nanos: u64,
    /// Telemetry digest from the anchor group (`Some` iff the scenario
    /// ran with the recorder on). A diagnostic — never part of
    /// equivalence comparisons.
    pub telemetry: Option<TelemetrySummary>,
    /// The drained flight-recorder ring, captured only when a
    /// telemetry-on run violated a log invariant.
    pub forensic_events: Option<Vec<Event>>,
}

impl RsmVerdict {
    /// The scenario identifier.
    #[must_use]
    pub fn id(&self) -> String {
        format!(
            "rsm/{}/{}/n{}/d{}/S{}/{}/lease{}/s{}",
            self.algorithm,
            self.adversary,
            self.n,
            self.depth,
            self.shards,
            self.workload,
            u8::from(self.lease),
            self.seed
        )
    }

    /// Whether every log invariant held.
    #[must_use]
    pub fn is_safe(&self) -> bool {
        self.violation.is_none()
    }

    /// Rounds per ordered slot (lower = better pipelining); 0 when no slot
    /// was ordered.
    #[must_use]
    pub fn rounds_per_slot(&self) -> f64 {
        ratio(self.rounds_run, self.slots)
    }

    /// Commands ordered per wall-clock second of scenario execution.
    #[must_use]
    pub fn commands_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.commands as f64 * 1e9 / self.wall_nanos as f64
    }

    /// Commands ordered per executed round.
    #[must_use]
    pub fn commands_per_round(&self) -> f64 {
        ratio(self.commands, self.rounds_run)
    }

    /// Requeued commands per ordered command — the slot-competition churn
    /// (the ROADMAP's admission-control baseline; leases drive it to ~0,
    /// sharding lowers it by cutting per-group contention). `None` when
    /// the scenario ordered nothing, so a stalled cell reports `null`
    /// instead of a misleading 0 (or a NaN from a naive division).
    #[must_use]
    pub fn requeue_ratio(&self) -> Option<f64> {
        opt_ratio(self.requeued_commands, self.commands)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Like [`ratio`], but distinguishes "no denominator" from "ratio 0":
/// `None` means the quantity is undefined (nothing ordered), not zero.
fn opt_ratio(num: u64, den: u64) -> Option<f64> {
    (den != 0).then(|| num as f64 / den as f64)
}

/// A builder for (algorithm × adversary × n × depth × shards × workload ×
/// lease × seed) log-service sweeps.
///
/// ```
/// use ho_harness::{AdversarySpec, AlgorithmSpec, RsmSweep, WorkloadSpec};
///
/// let report = RsmSweep::new()
///     .algorithms([AlgorithmSpec::OneThirdRule])
///     .adversaries([AdversarySpec::RandomLoss { loss: 0.3 }])
///     .sizes([4])
///     .depths([1, 4])
///     .workloads([WorkloadSpec::FixedRate { per_round: 2 }])
///     .seeds(0..5)
///     .rounds(60)
///     .run();
/// assert_eq!(report.scenarios, 10);
/// assert_eq!(report.violations, 0, "logs never fork");
/// ```
#[derive(Clone, Debug)]
pub struct RsmSweep {
    algorithms: Vec<AlgorithmSpec>,
    adversaries: Vec<AdversarySpec>,
    sizes: Vec<usize>,
    depths: Vec<usize>,
    shards: Vec<usize>,
    workloads: Vec<WorkloadSpec>,
    leases: Vec<bool>,
    seeds: Vec<u64>,
    rounds: u64,
    telemetry: bool,
    threads: Option<usize>,
    chunking: ChunkPolicy,
}

impl Default for RsmSweep {
    fn default() -> Self {
        RsmSweep {
            algorithms: vec![AlgorithmSpec::OneThirdRule],
            adversaries: vec![AdversarySpec::FullDelivery],
            sizes: vec![4],
            depths: vec![4],
            shards: vec![1],
            workloads: vec![WorkloadSpec::FixedRate { per_round: 2 }],
            leases: vec![false],
            seeds: (0..5).collect(),
            rounds: 60,
            telemetry: false,
            threads: None,
            chunking: ChunkPolicy::from_env(),
        }
    }
}

impl RsmSweep {
    /// A sweep with defaults (OTR, full delivery, n = 4, depth 4,
    /// fixed-rate 2, 5 seeds, 60 rounds).
    #[must_use]
    pub fn new() -> Self {
        RsmSweep::default()
    }

    /// Sets the inner-algorithm axis.
    #[must_use]
    pub fn algorithms(mut self, algorithms: impl IntoIterator<Item = AlgorithmSpec>) -> Self {
        self.algorithms = algorithms.into_iter().collect();
        self
    }

    /// Sets the adversary axis.
    #[must_use]
    pub fn adversaries(mut self, adversaries: impl IntoIterator<Item = AdversarySpec>) -> Self {
        self.adversaries = adversaries.into_iter().collect();
        self
    }

    /// Sets the replica-count axis.
    #[must_use]
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Sets the pipeline-depth axis.
    #[must_use]
    pub fn depths(mut self, depths: impl IntoIterator<Item = usize>) -> Self {
        self.depths = depths.into_iter().collect();
        self
    }

    /// Sets the shard-count axis (consensus groups per scenario).
    #[must_use]
    pub fn shards(mut self, shards: impl IntoIterator<Item = usize>) -> Self {
        self.shards = shards.into_iter().collect();
        self
    }

    /// Sets the workload axis.
    #[must_use]
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// Sets the flow-control axis: each entry runs the grid with the
    /// lease/backpressure stack off (`false`, today's driver bit-for-bit)
    /// or on (`true`, [`FlowControl::on`]). Default `[false]`.
    #[must_use]
    pub fn leases(mut self, leases: impl IntoIterator<Item = bool>) -> Self {
        self.leases = leases.into_iter().collect();
        self
    }

    /// Sets the seed axis.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the per-scenario round budget.
    #[must_use]
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Runs every scenario with the flight recorder + metrics registry
    /// active (see [`Sweep::telemetry`](crate::Sweep::telemetry)).
    #[must_use]
    pub fn telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Pins the worker count (default: all cores).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker");
        self.threads = Some(threads);
        self
    }

    /// Sets the work-stealing chunk policy.
    #[must_use]
    pub fn chunking(mut self, policy: ChunkPolicy) -> Self {
        self.chunking = policy;
        self
    }

    /// Materialises the scenario grid in axis order
    /// (algorithm, adversary, size, depth, shards, workload, lease, seed).
    #[must_use]
    pub fn scenarios(&self) -> Vec<RsmScenario> {
        let mut out = Vec::with_capacity(
            self.algorithms.len()
                * self.adversaries.len()
                * self.sizes.len()
                * self.depths.len()
                * self.shards.len()
                * self.workloads.len()
                * self.leases.len()
                * self.seeds.len(),
        );
        for &algorithm in &self.algorithms {
            for adversary in &self.adversaries {
                for &n in &self.sizes {
                    for &depth in &self.depths {
                        for &shards in &self.shards {
                            for &workload in &self.workloads {
                                for &lease in &self.leases {
                                    for &seed in &self.seeds {
                                        out.push(RsmScenario {
                                            algorithm,
                                            adversary: *adversary,
                                            n,
                                            depth,
                                            shards,
                                            workload,
                                            lease,
                                            seed,
                                            rounds: self.rounds,
                                            telemetry: self.telemetry,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Runs every scenario across the worker pool and aggregates.
    ///
    /// Chunking is **weighted by shard count**: an S-shard scenario runs S
    /// independent group loops, so it costs ~S× a 1-shard one — weighting
    /// keeps mixed-S grids balanced across workers without rebuilds.
    #[must_use]
    pub fn run(&self) -> RsmReport {
        let scenarios = self.scenarios();
        let threads = self.threads.unwrap_or_else(default_threads);
        let start = Instant::now();
        let verdicts: Vec<RsmVerdict> = par_map_weighted_with_policy(
            &scenarios,
            threads,
            self.chunking,
            |s| s.shards.max(1),
            ScenarioScratch::default,
            |scratch, s| s.run_reusing(scratch),
        );
        RsmReport::aggregate(
            verdicts,
            start.elapsed().as_secs_f64(),
            threads,
            self.chunking,
        )
    }
}

/// Grid-wide rsm totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RsmTotals {
    /// Rounds executed across scenarios.
    pub rounds: u64,
    /// Slots ordered (longest logs) across scenarios.
    pub slots: u64,
    /// Commands ordered across scenarios.
    pub commands: u64,
    /// Commands generated across scenarios.
    pub generated: u64,
    /// Commands requeued across scenarios.
    pub requeued: u64,
    /// The worst p99 apply latency (rounds) over all scenarios.
    pub worst_p99_latency: u64,
}

impl RsmTotals {
    /// Requeued commands per ordered command across the grid.
    #[must_use]
    pub fn requeue_ratio(&self) -> f64 {
        ratio(self.requeued, self.commands)
    }
}

/// One row of the per-cell table: a (algorithm, adversary, depth, shards,
/// workload, lease) aggregate.
#[derive(Clone, Debug, Default)]
pub struct RsmCell {
    /// Scenarios in the cell.
    pub scenarios: usize,
    /// Scenarios with a violated invariant.
    pub violations: usize,
    /// Rounds executed.
    pub rounds: u64,
    /// Slots ordered.
    pub slots: u64,
    /// Commands ordered.
    pub commands: u64,
    /// Commands generated.
    pub generated: u64,
    /// Commands requeued after losing their slot.
    pub requeued: u64,
    /// No-op slots (decided with an empty batch) in the cell's longest
    /// logs — with leases on, slots the non-holders conceded.
    pub noop_slots: u64,
    /// Slots batched past the lease by the timeout fallback.
    pub lease_takeovers: u64,
    /// Arrivals deferred by workload backpressure.
    pub deferred_commands: u64,
    /// Wall nanoseconds summed over the cell's scenarios.
    pub wall_nanos: u64,
    /// Worst p99 apply latency (rounds) in the cell.
    pub worst_p99_latency: u64,
    /// Backfill entries delivered across the cell's scenarios.
    pub backfill_entries: u64,
    /// Degraded (log-divergent) rounds across the cell's scenarios.
    pub divergent_rounds: u64,
    /// Contact-plan dark process-rounds across the cell's scenarios.
    pub dark_rounds: u64,
    /// Worst reconnection-to-convergence latency (rounds) in the cell.
    pub worst_catch_up: u64,
    /// Flight-recorder events lost to ring wrap across the cell's
    /// scenarios (0 with the recorder off) — truncation is never silent.
    pub events_dropped: u64,
}

impl RsmCell {
    /// Rounds per ordered slot in the cell.
    #[must_use]
    pub fn rounds_per_slot(&self) -> f64 {
        ratio(self.rounds, self.slots)
    }

    /// Commands ordered per wall-clock second in the cell.
    #[must_use]
    pub fn commands_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.commands as f64 * 1e9 / self.wall_nanos as f64
    }

    /// Requeued commands per ordered command in the cell; `None` when the
    /// cell ordered nothing (reported as `null`, not 0).
    #[must_use]
    pub fn requeue_ratio(&self) -> Option<f64> {
        opt_ratio(self.requeued, self.commands)
    }
}

/// The aggregated outcome of an [`RsmSweep`] run.
#[derive(Clone, Debug)]
pub struct RsmReport {
    /// Per-scenario verdicts, in grid order.
    pub verdicts: Vec<RsmVerdict>,
    /// Number of scenarios executed.
    pub scenarios: usize,
    /// Scenarios that violated a log invariant.
    pub violations: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Sweep throughput (scenarios per second).
    pub scenarios_per_sec: f64,
    /// Service throughput: commands ordered per wall-clock second of
    /// sweep execution.
    pub commands_per_sec: f64,
    /// Worker threads used.
    pub threads: usize,
    /// The work-stealing chunk policy.
    pub chunk: ChunkPolicy,
    /// Grid-wide totals.
    pub totals: RsmTotals,
}

impl RsmReport {
    /// Folds verdicts into a report.
    #[must_use]
    pub fn aggregate(
        verdicts: Vec<RsmVerdict>,
        wall_seconds: f64,
        threads: usize,
        chunk: ChunkPolicy,
    ) -> Self {
        let scenarios = verdicts.len();
        let violations = verdicts.iter().filter(|v| !v.is_safe()).count();
        let totals = RsmTotals {
            rounds: verdicts.iter().map(|v| v.rounds_run).sum(),
            slots: verdicts.iter().map(|v| v.slots).sum(),
            commands: verdicts.iter().map(|v| v.commands).sum(),
            generated: verdicts.iter().map(|v| v.generated_commands).sum(),
            requeued: verdicts.iter().map(|v| v.requeued_commands).sum(),
            worst_p99_latency: verdicts
                .iter()
                .filter_map(|v| v.latency_p99)
                .max()
                .unwrap_or(0),
        };
        RsmReport {
            scenarios,
            violations,
            wall_seconds,
            scenarios_per_sec: if wall_seconds > 0.0 {
                scenarios as f64 / wall_seconds
            } else {
                f64::INFINITY
            },
            commands_per_sec: if wall_seconds > 0.0 {
                totals.commands as f64 / wall_seconds
            } else {
                f64::INFINITY
            },
            threads,
            chunk,
            totals,
            verdicts,
        }
    }

    /// The verdicts that violated an invariant.
    #[must_use]
    pub fn violating(&self) -> Vec<&RsmVerdict> {
        self.verdicts.iter().filter(|v| !v.is_safe()).collect()
    }

    /// Rounds per ordered slot grid-wide.
    #[must_use]
    pub fn rounds_per_slot(&self) -> f64 {
        ratio(self.totals.rounds, self.totals.slots)
    }

    /// Per-(algorithm, adversary, depth, shards, workload, lease)
    /// aggregates — the throughput/latency table the rsm sweep exists to
    /// produce.
    #[must_use]
    pub fn by_cell(&self) -> std::collections::BTreeMap<RsmCellKey, RsmCell> {
        let mut cells: std::collections::BTreeMap<RsmCellKey, RsmCell> =
            std::collections::BTreeMap::new();
        for v in &self.verdicts {
            let cell = cells
                .entry((
                    v.algorithm.to_owned(),
                    v.adversary.clone(),
                    v.depth,
                    v.shards,
                    v.workload.clone(),
                    v.lease,
                ))
                .or_default();
            cell.scenarios += 1;
            if !v.is_safe() {
                cell.violations += 1;
            }
            cell.rounds += v.rounds_run;
            cell.slots += v.slots;
            cell.commands += v.commands;
            cell.generated += v.generated_commands;
            cell.requeued += v.requeued_commands;
            cell.noop_slots += v.noop_slots;
            cell.lease_takeovers += v.lease_takeovers;
            cell.deferred_commands += v.deferred_commands;
            cell.wall_nanos += v.wall_nanos;
            cell.worst_p99_latency = cell.worst_p99_latency.max(v.latency_p99.unwrap_or(0));
            cell.backfill_entries += v.backfill_entries;
            cell.divergent_rounds += v.divergent_rounds;
            cell.dark_rounds += v.dark_rounds;
            cell.worst_catch_up = cell.worst_catch_up.max(v.catch_up_rounds.unwrap_or(0));
            cell.events_dropped += v.telemetry.map_or(0, |t| t.events_dropped);
        }
        cells
    }
}

/// The cell-table key: (algorithm, adversary, depth, shards, workload,
/// lease).
pub type RsmCellKey = (String, String, usize, usize, String, bool);

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(algorithm: AlgorithmSpec, adversary: AdversarySpec) -> RsmScenario {
        RsmScenario {
            algorithm,
            adversary,
            n: 4,
            depth: 4,
            shards: 1,
            workload: WorkloadSpec::FixedRate { per_round: 2 },
            lease: false,
            seed: 7,
            rounds: 60,
            telemetry: false,
        }
    }

    #[test]
    fn healthy_scenario_orders_commands() {
        let v = scenario(AlgorithmSpec::OneThirdRule, AdversarySpec::FullDelivery).run();
        assert!(v.is_safe(), "{:?}", v.violation);
        assert!(v.slots > 0);
        assert!(v.commands > 0);
        assert!(v.rounds_per_slot() > 0.0);
        assert!(v.commands_per_sec() > 0.0);
        assert!(v.latency_p50 <= v.latency_p99);
        assert_eq!(v.rounds_run, 60);
        assert_eq!(v.min_slots, v.slots, "lockstep replicas stay level");
    }

    #[test]
    fn verdicts_are_deterministic() {
        let s = scenario(
            AlgorithmSpec::OneThirdRule,
            AdversarySpec::RandomLoss { loss: 0.3 },
        );
        let (a, b) = (s.run(), s.run());
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.commands, b.commands);
        assert_eq!(a.latency_p99, b.latency_p99);
        assert_eq!(a.delivered_messages, b.delivered_messages);
    }

    #[test]
    fn scratch_reuse_is_verdict_neutral() {
        let mut scratch = ScenarioScratch::default();
        for (algorithm, n) in [
            (AlgorithmSpec::OneThirdRule, 7),
            (AlgorithmSpec::LastVoting, 4),
            (AlgorithmSpec::OneThirdRule, 4),
        ] {
            let mut s = scenario(algorithm, AdversarySpec::RandomLoss { loss: 0.3 });
            s.n = n;
            let fresh = s.run();
            let reused = s.run_reusing(&mut scratch);
            assert_eq!(fresh.slots, reused.slots);
            assert_eq!(fresh.commands, reused.commands);
            assert_eq!(fresh.violation, reused.violation);
            assert_eq!(fresh.delivered_messages, reused.delivered_messages);
        }
    }

    #[test]
    fn grid_is_cartesian_and_parallel_agrees() {
        let sweep = RsmSweep::new()
            .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
            .adversaries([AdversarySpec::RandomLoss { loss: 0.3 }])
            .sizes([4])
            .depths([1, 4])
            .workloads([
                WorkloadSpec::FixedRate { per_round: 2 },
                WorkloadSpec::ClosedLoop { clients: 8 },
            ])
            .seeds(0..3)
            .rounds(40);
        assert_eq!(sweep.scenarios().len(), 2 * 2 * 2 * 3);
        let seq = sweep.clone().threads(1).run();
        let par = sweep.threads(4).run();
        let key = |r: &RsmReport| {
            r.verdicts
                .iter()
                .map(|v| (v.id(), v.slots, v.commands))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&seq), key(&par), "outcomes are deterministic");
        assert_eq!(seq.violations, 0);
    }

    #[test]
    fn report_aggregates_match_verdicts() {
        let report = RsmSweep::new().seeds(0..4).run();
        assert_eq!(report.scenarios, 4);
        assert_eq!(report.violations, 0);
        let commands: u64 = report.verdicts.iter().map(|v| v.commands).sum();
        assert_eq!(report.totals.commands, commands);
        assert!(report.commands_per_sec > 0.0);
        assert!(report.rounds_per_slot() > 0.0);
        let cells = report.by_cell();
        assert_eq!(cells.len(), 1);
        let cell = cells.values().next().unwrap();
        assert_eq!(cell.scenarios, 4);
        assert_eq!(cell.commands, commands);
        assert!(cell.rounds_per_slot() > 0.0);
    }

    #[test]
    fn shards_axis_expands_the_grid_and_stays_safe() {
        let sweep = RsmSweep::new()
            .adversaries([AdversarySpec::RandomLoss { loss: 0.3 }])
            .shards([1, 2, 4])
            .seeds(0..2)
            .rounds(40);
        assert_eq!(sweep.scenarios().len(), 3 * 2);
        let report = sweep.run();
        assert_eq!(report.violations, 0);
        let cells = report.by_cell();
        assert_eq!(cells.len(), 3, "one cell per shard count");
        for ((_, _, _, shards, _, _), cell) in &cells {
            assert!(*shards >= 1);
            assert!(cell.commands > 0, "S={shards} ordered nothing");
        }
    }

    #[test]
    fn scratch_reuse_across_shard_counts_is_verdict_neutral() {
        // One worker scratch dragged through S = 4, 1, 8, 2 scenarios:
        // the per-shard round-buffer vector grows and shrinks, and no
        // verdict may differ from a fresh-scratch run.
        let mut scratch = ScenarioScratch::default();
        for shards in [4, 1, 8, 2] {
            let mut s = scenario(
                AlgorithmSpec::OneThirdRule,
                AdversarySpec::RandomLoss { loss: 0.3 },
            );
            s.shards = shards;
            let fresh = s.run();
            let reused = s.run_reusing(&mut scratch);
            assert_eq!(fresh.slots, reused.slots, "S={shards}");
            assert_eq!(fresh.commands, reused.commands, "S={shards}");
            assert_eq!(fresh.violation, reused.violation, "S={shards}");
            assert_eq!(fresh.latency_p99, reused.latency_p99, "S={shards}");
            assert!(fresh.id().contains(&format!("/S{shards}/")));
        }
    }

    #[test]
    fn weighted_chunking_is_verdict_neutral() {
        // Mixed shard counts, 1 vs 4 workers: the weighted chunker must
        // not change a single verdict (satellite: sweep chunking accounts
        // shard cost).
        let sweep = RsmSweep::new()
            .adversaries([AdversarySpec::RandomLoss { loss: 0.2 }])
            .shards([1, 4, 8])
            .seeds(0..3)
            .rounds(30);
        let seq = sweep.clone().threads(1).run();
        let par = sweep.threads(4).run();
        let key = |r: &RsmReport| {
            r.verdicts
                .iter()
                .map(|v| (v.id(), v.slots, v.commands, v.requeued_commands))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&seq), key(&par));
    }

    #[test]
    fn store_and_forward_scenarios_report_degradation_metrics() {
        use ho_core::contact::ContactPlan;
        let plan = ContactPlan::StoreAndForward { dark: 30 };
        let mut s = scenario(
            AlgorithmSpec::OneThirdRule,
            AdversarySpec::ContactPlan { plan },
        );
        s.rounds = 80;
        let v = s.run();
        assert!(v.is_safe(), "{:?}", v.violation);
        assert_eq!(v.dark_rounds, 30, "one replica dark for 30 rounds");
        assert!(v.divergent_rounds > 0, "the dark replica trailed");
        assert!(v.backfill_entries > 0, "catch-up ran through backfill");
        let catch_up = v.catch_up_rounds.expect("service re-converged");
        assert!(
            catch_up <= v.rounds_run - plan.good_from(),
            "catch-up {catch_up} exceeds the post-reconnection budget"
        );
        // Non-contact scenarios keep the contact metrics inert.
        let plain = scenario(AlgorithmSpec::OneThirdRule, AdversarySpec::FullDelivery).run();
        assert_eq!(plain.dark_rounds, 0);
        assert_eq!(plain.catch_up_rounds, None);
    }

    #[test]
    fn lease_axis_expands_the_grid_and_kills_full_delivery_requeues() {
        let sweep = RsmSweep::new().leases([false, true]).seeds(0..3).rounds(60);
        assert_eq!(sweep.scenarios().len(), 2 * 3);
        let report = sweep.run();
        assert_eq!(report.violations, 0);
        let cells = report.by_cell();
        assert_eq!(cells.len(), 2, "one cell per lease setting");
        let requeued = |lease: bool| {
            cells
                .iter()
                .find(|((_, _, _, _, _, l), _)| *l == lease)
                .map(|(_, c)| c)
                .unwrap()
        };
        let off = requeued(false);
        let on = requeued(true);
        assert!(off.requeued > 0, "lease-off full delivery churns");
        assert_eq!(on.requeued, 0, "leases end slot competition");
        assert_eq!(on.lease_takeovers, 0, "no timeouts under full delivery");
        assert!(on.commands > 0);
        assert!(
            on.noop_slots > 0,
            "non-holders concede their slots as noops"
        );
        // Ids carry the axis, so both settings coexist in one report.
        assert!(report.verdicts.iter().any(|v| v.id().contains("/lease0/")));
        assert!(report.verdicts.iter().any(|v| v.id().contains("/lease1/")));
    }

    #[test]
    fn requeue_ratio_is_null_not_nan_when_nothing_was_ordered() {
        // A partitioned minority orders nothing: the ratio must be None
        // (JSON null), never NaN or a misleading 0/0 = 0.
        let mut s = scenario(
            AlgorithmSpec::OneThirdRule,
            AdversarySpec::KernelOnly { loss: 0.8 },
        );
        s.rounds = 0; // zero budget: guaranteed empty logs
        let v = s.run();
        assert_eq!(v.commands, 0);
        assert_eq!(v.requeue_ratio(), None);
        let healthy = scenario(AlgorithmSpec::OneThirdRule, AdversarySpec::FullDelivery).run();
        assert!(healthy.requeue_ratio().is_some());
    }

    #[test]
    fn deeper_pipelines_raise_cell_throughput() {
        let report = RsmSweep::new().depths([1, 8]).seeds(0..3).rounds(60).run();
        let cells = report.by_cell();
        let per_round = |depth: usize| {
            let cell = cells
                .iter()
                .find(|((_, _, d, _, _, _), _)| *d == depth)
                .map(|(_, c)| c)
                .unwrap();
            ratio(cell.commands, cell.rounds)
        };
        assert!(
            per_round(8) > per_round(1),
            "depth 8 must order more commands per round than depth 1"
        );
    }
}
