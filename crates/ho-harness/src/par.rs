//! Work-stealing parallel map over scoped threads.
//!
//! The sweep's unit of work is one scenario — embarrassingly parallel, no
//! shared mutable state. Workers pull indices from one atomic counter, so
//! long scenarios never leave a thread idle while short ones pile up
//! elsewhere (the same dynamic scheduling `rayon`'s `par_iter` provides;
//! implemented on `std::thread::scope` because the build environment
//! vendors no external crates).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on `threads` worker threads, preserving order.
///
/// `threads == 1` degenerates to a sequential map (no thread spawn), which
/// the sweep uses to measure single-core baselines.
///
/// # Panics
///
/// Propagates panics from `f` (a panicking worker aborts the whole map, as
/// a panicking `rayon` task would).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut labelled: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.min(items.len()) {
            handles.push(scope.spawn(|| {
                let mut out = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    out.push((i, f(&items[i])));
                }
                out
            }));
        }
        for h in handles {
            labelled.extend(h.join().expect("sweep worker panicked"));
        }
    });
    labelled.sort_by_key(|(i, _)| *i);
    labelled.into_iter().map(|(_, r)| r).collect()
}

/// The number of workers to use by default: all available cores.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..64).collect();
        assert_eq!(
            par_map(&items, 1, |&x| x + 1),
            par_map(&items, 4, |&x| x + 1)
        );
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = Vec::new();
        assert!(par_map(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u64> = (0..256).collect();
        par_map(&items, 4, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Give other workers a chance to pull from the queue.
            std::thread::yield_now();
        });
        assert!(seen.lock().unwrap().len() > 1, "expected >1 worker thread");
    }
}
