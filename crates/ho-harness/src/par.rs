//! Work-stealing parallel map over scoped threads.
//!
//! The sweep's unit of work is one scenario — embarrassingly parallel, no
//! shared mutable state. Workers claim *chunks* of indices from one atomic
//! counter, so long scenarios never leave a thread idle while short ones
//! pile up elsewhere (the same dynamic scheduling `rayon`'s `par_iter`
//! provides; implemented on `std::thread::scope` because the build
//! environment vendors no external crates). Chunked claiming amortises the
//! atomic traffic over `CHUNK_TARGET` claims per worker, and
//! [`par_map_with`] gives every worker a private, reusable scratch value —
//! what lets the sweep carry its round buffers from scenario to scenario
//! instead of re-allocating them per item.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How the work-stealing map slices the item grid into claims.
///
/// The defaults were chosen on a 1-core container and have never been
/// tuned against real contention (ROADMAP's multi-core re-measure); making
/// them configurable — builder-side and via environment — is what makes
/// that re-measure actionable: rerun the sweep with `HO_SWEEP_CHUNK_TARGET`
/// / `HO_SWEEP_CHUNK_MAX` overrides and diff the recorded throughput, no
/// rebuild needed. The chosen parameters are recorded in every
/// [`SweepReport`](crate::SweepReport) and in `BENCH_sweep.json`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkPolicy {
    /// Aim for this many chunk claims per worker: few enough that the
    /// atomic counter stays cold, many enough that an unlucky worker stuck
    /// with slow scenarios can shed the rest of the grid to its peers.
    pub target_claims: usize,
    /// Upper bound on a chunk, bounding the tail latency of the last
    /// chunks.
    pub max_chunk: usize,
}

impl Default for ChunkPolicy {
    fn default() -> Self {
        ChunkPolicy {
            target_claims: 16,
            max_chunk: 64,
        }
    }
}

impl ChunkPolicy {
    /// The default policy with `HO_SWEEP_CHUNK_TARGET` / `HO_SWEEP_CHUNK_MAX`
    /// environment overrides applied (ignored unless they parse as positive
    /// integers).
    #[must_use]
    pub fn from_env() -> Self {
        fn positive(var: &str) -> Option<usize> {
            std::env::var(var)
                .ok()?
                .trim()
                .parse()
                .ok()
                .filter(|&v| v > 0)
        }
        let mut policy = ChunkPolicy::default();
        if let Some(target) = positive("HO_SWEEP_CHUNK_TARGET") {
            policy.target_claims = target;
        }
        if let Some(max) = positive("HO_SWEEP_CHUNK_MAX") {
            policy.max_chunk = max;
        }
        policy
    }

    /// The chunk size this policy yields for a grid of `items` over
    /// `workers` workers.
    #[must_use]
    pub fn chunk_size(&self, items: usize, workers: usize) -> usize {
        // Saturating: target_claims is env-supplied and may be huge.
        let claims = workers.saturating_mul(self.target_claims).max(1);
        (items / claims).clamp(1, self.max_chunk.max(1))
    }
}

/// Maps `f` over `items` on `threads` worker threads, preserving order.
///
/// `threads == 1` degenerates to a sequential map (no thread spawn), which
/// the sweep uses to measure single-core baselines.
///
/// # Panics
///
/// Propagates panics from `f` (a panicking worker aborts the whole map, as
/// a panicking `rayon` task would).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, threads, || (), |(), item| f(item))
}

/// [`par_map`] with per-worker scratch: every worker calls `init` once and
/// threads the resulting state through all of its `f` calls. Order of the
/// results is preserved; the assignment of items to workers is not
/// deterministic (the scratch must not influence results).
///
/// # Panics
///
/// Propagates panics from `init` and `f`.
pub fn par_map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    par_map_with_policy(items, threads, ChunkPolicy::from_env(), init, f)
}

/// [`par_map_with`] under an explicit [`ChunkPolicy`] (the `Sweep` builder
/// threads its configured policy through here).
///
/// # Panics
///
/// Propagates panics from `init` and `f`.
pub fn par_map_with_policy<T, R, S, I, F>(
    items: &[T],
    threads: usize,
    policy: ChunkPolicy,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    if threads == 1 || items.len() <= 1 {
        let mut scratch = init();
        return items.iter().map(|item| f(&mut scratch, item)).collect();
    }

    let workers = threads.min(items.len());
    let chunk = policy.chunk_size(items.len(), workers);
    let next = AtomicUsize::new(0);
    // Each worker returns (start_index, results) chunks; merging by start
    // index restores grid order.
    let mut chunks: Vec<(usize, Vec<R>)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut scratch = init();
                let mut out: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    let mut results = Vec::with_capacity(end - start);
                    for item in &items[start..end] {
                        results.push(f(&mut scratch, item));
                    }
                    out.push((start, results));
                }
                out
            }));
        }
        for h in handles {
            chunks.extend(h.join().expect("sweep worker panicked"));
        }
    });
    chunks.sort_by_key(|(start, _)| *start);
    debug_assert_eq!(
        chunks.iter().map(|(_, r)| r.len()).sum::<usize>(),
        items.len()
    );
    chunks.into_iter().flat_map(|(_, r)| r).collect()
}

/// [`par_map_with_policy`] with **weighted** chunking: `weight(item)`
/// estimates an item's relative cost (in units of the cheapest item), and
/// chunk boundaries are laid so every chunk carries roughly equal total
/// weight instead of an equal item count. The rsm sweep uses this with
/// shard count as the weight — a 16-shard scenario runs 16 group loops, so
/// a count-based chunk holding a run of S=16 scenarios would be ~16× the
/// work of its S=1 neighbour and the grid tail would serialise behind one
/// worker.
///
/// Bounds are precomputed (deterministic for a given grid and policy);
/// workers claim chunk *indices* from the atomic counter. Result order is
/// preserved exactly as in the unweighted map.
///
/// # Panics
///
/// Propagates panics from `init` and `f`.
pub fn par_map_weighted_with_policy<T, R, S, W, I, F>(
    items: &[T],
    threads: usize,
    policy: ChunkPolicy,
    weight: W,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    W: Fn(&T) -> usize,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    if threads == 1 || items.len() <= 1 {
        let mut scratch = init();
        return items.iter().map(|item| f(&mut scratch, item)).collect();
    }

    let workers = threads.min(items.len());
    // Lay chunk bounds so each chunk holds ~total/claims weight, capped at
    // max_chunk items (the same knobs as the unweighted path, applied to
    // weight instead of count).
    let total: usize = items.iter().map(|t| weight(t).max(1)).sum();
    let claims = workers.saturating_mul(policy.target_claims).max(1);
    let per_chunk = (total / claims).max(1);
    let max_items = policy.max_chunk.max(1);
    let mut bounds: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    let mut acc = 0;
    for (i, item) in items.iter().enumerate() {
        acc += weight(item).max(1);
        let len = i + 1 - start;
        if acc >= per_chunk || len >= max_items {
            bounds.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    if start < items.len() {
        bounds.push((start, items.len()));
    }

    let next = AtomicUsize::new(0);
    let mut chunks: Vec<(usize, Vec<R>)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut scratch = init();
                let mut out: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let claim = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(start, end)) = bounds.get(claim) else {
                        break;
                    };
                    let mut results = Vec::with_capacity(end - start);
                    for item in &items[start..end] {
                        results.push(f(&mut scratch, item));
                    }
                    out.push((start, results));
                }
                out
            }));
        }
        for h in handles {
            chunks.extend(h.join().expect("sweep worker panicked"));
        }
    });
    chunks.sort_by_key(|(start, _)| *start);
    debug_assert_eq!(
        chunks.iter().map(|(_, r)| r.len()).sum::<usize>(),
        items.len()
    );
    chunks.into_iter().flat_map(|(_, r)| r).collect()
}

/// The number of workers to use by default: all available cores.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..64).collect();
        assert_eq!(
            par_map(&items, 1, |&x| x + 1),
            par_map(&items, 4, |&x| x + 1)
        );
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = Vec::new();
        assert!(par_map(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn odd_sizes_cover_every_item() {
        // Chunked claiming must not drop or duplicate boundary items.
        for len in [1usize, 2, 63, 64, 65, 127, 1000] {
            let items: Vec<usize> = (0..len).collect();
            let out = par_map(&items, 3, |&x| x);
            assert_eq!(out, items, "len = {len}");
        }
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // With one worker, the scratch value threads through every call.
        let items: Vec<u64> = (0..10).collect();
        let out = par_map_with(
            &items,
            1,
            || 0u64,
            |seen, &x| {
                *seen += 1;
                (*seen, x)
            },
        );
        let counts: Vec<u64> = out.iter().map(|(c, _)| *c).collect();
        assert_eq!(counts, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn per_worker_scratch_is_isolated() {
        use std::sync::atomic::AtomicUsize;
        // Every worker gets its own scratch: the number of `init` calls
        // equals the number of workers actually spawned, never more.
        let inits = AtomicUsize::new(0);
        let items: Vec<u64> = (0..256).collect();
        let out = par_map_with(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u64>::new()
            },
            |scratch, &x| {
                scratch.push(x);
                x
            },
        );
        assert_eq!(out, items);
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u64> = (0..256).collect();
        par_map(&items, 4, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Give other workers a chance to pull from the queue.
            std::thread::yield_now();
        });
        assert!(seen.lock().unwrap().len() > 1, "expected >1 worker thread");
    }

    #[test]
    fn chunk_sizes_are_sane() {
        let policy = ChunkPolicy::default();
        assert_eq!(policy.chunk_size(10, 16), 1);
        assert_eq!(policy.chunk_size(0, 4), 1);
        assert_eq!(policy.chunk_size(1 << 20, 2), policy.max_chunk);
        let mid = policy.chunk_size(1920, 4);
        assert!((1..=policy.max_chunk).contains(&mid));
    }

    #[test]
    fn weighted_map_preserves_order_and_coverage() {
        // Heavily skewed weights (1000, 1, 1, ...) and odd lengths: every
        // item appears exactly once, in order, and matches the unweighted
        // result.
        for len in [1usize, 2, 65, 257, 1000] {
            let items: Vec<usize> = (0..len).collect();
            let weighted = par_map_weighted_with_policy(
                &items,
                3,
                ChunkPolicy::default(),
                |&x| if x == 0 { 1000 } else { x % 16 },
                || (),
                |(), &x| x,
            );
            assert_eq!(weighted, items, "len = {len}");
        }
    }

    #[test]
    fn weighted_chunks_respect_the_item_cap() {
        // All-equal weights degrade gracefully: the max_chunk cap still
        // bounds chunk length (observable through per-worker scratch: one
        // scratch never sees a contiguous run longer than max_chunk unless
        // it claims multiple chunks, which coverage+order already allow).
        let policy = ChunkPolicy {
            target_claims: 1,
            max_chunk: 4,
        };
        let items: Vec<usize> = (0..100).collect();
        let out = par_map_weighted_with_policy(&items, 2, policy, |_| 1, || (), |(), &x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn custom_chunk_policy_is_respected_and_covers_all_items() {
        for policy in [
            ChunkPolicy {
                target_claims: 1,
                max_chunk: 4,
            },
            ChunkPolicy {
                target_claims: 128,
                max_chunk: 1,
            },
        ] {
            let items: Vec<usize> = (0..257).collect();
            let out = par_map_with_policy(&items, 3, policy, || (), |(), &x| x);
            assert_eq!(out, items, "{policy:?}");
        }
    }
}
