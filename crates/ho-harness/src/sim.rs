//! The sim-layer axis: sweeping the predicate *implementation* stack.
//!
//! The model-level sweep ([`Sweep`](crate::Sweep)) exercises the paper's
//! *upper* layer — consensus algorithms against adversarial HO
//! assignments. This module sweeps the *lower* layer of Figure 1: the
//! system-level simulator running Algorithms 2 and 3 over lossy,
//! crash-prone, partially synchronous links, with a per-scenario verdict
//! checking the **delivered predicate** — did the implementation actually
//! establish the `P_su` / `P_k` window the theorems promise, within the
//! theorem bound, under this fault model and seed?
//!
//! Both layers ride the same [`SendPlan`](ho_core::SendPlan) kernel and
//! pooled-payload runtime, and both report the same
//! [`MessageStats`](ho_core::MessageStats) accounting, so a grid's results
//! aggregate uniformly into `BENCH_sweep.json`'s `sim_layer` section.

use std::time::Instant;

use ho_core::contact::ContactPlan;
use ho_core::executor::MessageStats;
use ho_core::telemetry::{Event, Telemetry, TelemetrySummary};
use ho_predicates::bounds::BoundParams;
use ho_predicates::measure::{
    run_alg2_scenario_with, run_alg3_scenario_with, Scenario as GoodPeriodStart, SimLayerScratch,
};
use ho_predicates::SimMeasurement;
use ho_sim::{BadPeriodConfig, SchedulerKind};

use crate::par::{default_threads, par_map_with_policy, ChunkPolicy};
use crate::report::MessageTotals;
use crate::scenario::permille;

/// Normalized process-speed bound `φ` used by the canonical sim grid.
const PHI: f64 = 1.0;
/// Normalized transmission delay `δ` used by the canonical sim grid.
const DELTA: f64 = 2.0;

/// Which predicate-implementation algorithm a sim scenario runs. The upper
/// layer is OneThirdRule in both cases — the scenario measures the
/// *implementation* layer, not consensus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImplementationSpec {
    /// Algorithm 2: `P_su(Π, ρ0, ρ0+x−1)` in a π0-down good period
    /// (π0 = Π here — everyone is up and synchronous).
    Alg2,
    /// Algorithm 3 with resilience `f` (`f < n/2`): `P_k(π0, ρ0, ρ0+x−1)`
    /// in a π0-arbitrary good period, `π0` the first `n − f` processes.
    Alg3 {
        /// The resilience parameter.
        f: usize,
    },
}

impl ImplementationSpec {
    /// Stable name used in reports.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            ImplementationSpec::Alg2 => "alg2_space_uniform".into(),
            ImplementationSpec::Alg3 { f } => format!("alg3_kernel_f{f}"),
        }
    }
}

/// The link-fault model preceding (and shaping) the good period.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkFaultSpec {
    /// The good period is initial (`τG = 0`) — a "nice" run; Theorems 5/7
    /// give the bound.
    GoodFromStart,
    /// A loss-heavy bad period of length `bad_len`, then good; Theorems
    /// 3/6 give the bound.
    LossyThenGood {
        /// Length of the bad period (normalized units).
        bad_len: f64,
        /// Per-transmission loss probability during the bad period.
        loss: f64,
    },
    /// The default chaotic bad period (loss, crashes, slowdown, delay),
    /// then good.
    CrashyThenGood {
        /// Length of the bad period (normalized units).
        bad_len: f64,
    },
    /// A bad period whose only faults are process omissions (§2.2's ST/DT
    /// classes), then good.
    OmissiveThenGood {
        /// Length of the bad period (normalized units).
        bad_len: f64,
        /// Send-omission probability.
        send: f64,
        /// Receive-omission probability.
        recv: f64,
    },
    /// A [`ContactPlan`] link schedule (scheduled link outages over calm
    /// period rules), then good from the plan's horizon; Theorems 3/6
    /// give the bound. The plan's seed-rotated choices derive from the
    /// scenario seed.
    ContactPlanThenGood {
        /// The link schedule preceding the good period.
        plan: ContactPlan,
        /// Real-time length mapped onto one plan round.
        round_len: f64,
    },
}

/// A length in normalized time units rendered as integer centiunits,
/// keeping fault names dot-free (`rl250` = round length 2.5).
fn centi(t: f64) -> u64 {
    (t * 100.0).round() as u64
}

impl LinkFaultSpec {
    /// Stable name used in reports. Probabilities render as integer
    /// permille and time lengths as integer centiunits, so every name is
    /// dot-free and unambiguous across grids.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            LinkFaultSpec::GoodFromStart => "good_from_start".into(),
            LinkFaultSpec::LossyThenGood { bad_len, loss } => {
                format!("lossy_then_good_t{}_p{}", centi(*bad_len), permille(*loss))
            }
            LinkFaultSpec::CrashyThenGood { bad_len } => {
                format!("crashy_then_good_t{}", centi(*bad_len))
            }
            LinkFaultSpec::OmissiveThenGood {
                bad_len,
                send,
                recv,
            } => format!(
                "omissive_then_good_t{}_p{}_p{}",
                centi(*bad_len),
                permille(*send),
                permille(*recv)
            ),
            LinkFaultSpec::ContactPlanThenGood { plan, round_len } => {
                format!("{}_rl{}", plan.label(), centi(*round_len))
            }
        }
    }

    /// The measurement-harness scenario this fault model maps to. `seed`
    /// drives a contact plan's seed-rotated choices; the other fault
    /// models draw their randomness inside the simulator and ignore it.
    #[must_use]
    pub fn good_period_start(&self, seed: u64) -> GoodPeriodStart {
        match *self {
            LinkFaultSpec::GoodFromStart => GoodPeriodStart::Initial,
            LinkFaultSpec::LossyThenGood { bad_len, loss } => GoodPeriodStart::AfterBad {
                bad_len,
                bad: BadPeriodConfig::lossy(loss),
            },
            LinkFaultSpec::CrashyThenGood { bad_len } => GoodPeriodStart::AfterBad {
                bad_len,
                bad: BadPeriodConfig::default(),
            },
            LinkFaultSpec::OmissiveThenGood {
                bad_len,
                send,
                recv,
            } => GoodPeriodStart::AfterBad {
                bad_len,
                bad: BadPeriodConfig::omissive(send, recv),
            },
            LinkFaultSpec::ContactPlanThenGood { plan, round_len } => {
                GoodPeriodStart::contact(plan, seed, round_len)
            }
        }
    }
}

/// One cell of the sim-layer sweep: a fully determined system-level run.
#[derive(Clone, Debug)]
pub struct SimScenario {
    /// The implementation algorithm under test.
    pub implementation: ImplementationSpec,
    /// The link-fault model.
    pub fault: LinkFaultSpec,
    /// Number of processes.
    pub n: usize,
    /// RNG seed (step jitter, loss, crash roulette).
    pub seed: u64,
    /// The predicate-window length `x` the run must deliver.
    pub window: u64,
    /// Event-scheduler backend the simulator runs on. Dispatch order is
    /// identical under both; the heap survives as the equivalence oracle.
    pub scheduler: SchedulerKind,
    /// Runs the scenario with the flight recorder + metrics registry
    /// active. Recording only observes — the verdict is bit-identical to
    /// an unrecorded run (`tests/telemetry_equivalence.rs` pins this).
    pub telemetry: bool,
}

impl SimScenario {
    /// A stable identifier for reports.
    #[must_use]
    pub fn id(&self) -> String {
        format!(
            "{}/{}/n{}/s{}",
            self.implementation.name(),
            self.fault.name(),
            self.n,
            self.seed
        )
    }

    /// The observation slack added on top of the theorem bound: the
    /// theorems count message *reception*, the harness observes `HO(p, r)`
    /// only when `T_p^r` executes — one delivery (Algorithm 2) or one INIT
    /// exchange (Algorithm 3) later. The formulas live on [`BoundParams`],
    /// next to the theorem bounds they qualify.
    #[must_use]
    pub fn slack(&self) -> f64 {
        let params = BoundParams::new(self.n, PHI, DELTA);
        match self.implementation {
            ImplementationSpec::Alg2 => params.alg2_slack(),
            ImplementationSpec::Alg3 { .. } => params.alg3_slack(),
        }
    }

    /// Executes the scenario and reports the verdict: the delivered
    /// predicate checked against the implementation's promise.
    #[must_use]
    pub fn run(&self) -> SimVerdict {
        self.run_with(&mut SimLayerScratch::new())
    }

    /// [`run`](SimScenario::run) with reusable scratch storage, so batched
    /// sweeps recycle the event queue, process slots and reception buffers
    /// across scenarios instead of reallocating them per cell.
    #[must_use]
    pub fn run_with(&self, scratch: &mut SimLayerScratch) -> SimVerdict {
        let start = Instant::now();
        // The recorder ring lives in the scratch: a telemetry-on scenario
        // reuses the previous scenario's allocation (reset, not realloc),
        // a telemetry-off scenario must not inherit a stale ring.
        if self.telemetry {
            if !scratch.telemetry().is_on() {
                scratch.set_telemetry(Telemetry::on());
            }
        } else if scratch.telemetry().is_on() {
            scratch.set_telemetry(Telemetry::off());
        }
        let params = BoundParams::new(self.n, PHI, DELTA);
        let good_start = self.fault.good_period_start(self.seed);
        let outcome: SimMeasurement = match self.implementation {
            ImplementationSpec::Alg2 => run_alg2_scenario_with(
                params,
                ho_core::ProcessSet::full(self.n),
                self.window,
                good_start,
                self.seed,
                self.scheduler,
                scratch,
            ),
            ImplementationSpec::Alg3 { f } => run_alg3_scenario_with(
                params,
                f,
                self.window,
                good_start,
                self.seed,
                self.scheduler,
                scratch,
            ),
        };
        let m = &outcome.measurement;
        let achieved = m.achieved_at.is_some();
        let within_bound = m.within_bound(self.slack());
        // The paper's promise: a good period of the theorem-bound length
        // suffices. A run that never achieves the window (the deadline is
        // 6× the bound) or achieves it late contradicts the bound.
        let violation = if !achieved {
            Some(format!(
                "{}: predicate window never delivered (deadline 6x bound {:.1})",
                self.id(),
                m.bound
            ))
        } else if !within_bound {
            Some(format!(
                "{}: delivered at {:.2} past bound {:.2} + slack {:.2}",
                self.id(),
                m.empirical_length().unwrap_or(f64::NAN),
                m.bound,
                self.slack()
            ))
        } else {
            None
        };
        let wall_nanos = start.elapsed().as_nanos() as u64;
        let events_dispatched = outcome.stats.events_dispatched;
        // Forensics: a broken promise drains the ring (the last K events
        // leading up to the violation) out of the scratch before the next
        // scenario resets it.
        let forensic_events = (violation.is_some() && scratch.telemetry().is_on())
            .then(|| scratch.telemetry().events().copied().collect());
        SimVerdict {
            implementation: self.implementation.name(),
            fault: self.fault.name(),
            n: self.n,
            seed: self.seed,
            window: self.window,
            scheduler: self.scheduler,
            achieved,
            within_bound,
            empirical_length: m.empirical_length(),
            bound: m.bound,
            rho0: m.rho0,
            violation,
            max_round: outcome.max_round,
            send_steps: outcome.stats.send_steps,
            transmissions: outcome.stats.transmissions,
            dropped: outcome.stats.dropped,
            crashes: outcome.stats.crashes,
            messages: outcome.messages,
            events_dispatched,
            peak_queue_depth: outcome.stats.peak_queue_depth,
            events_per_sec: if wall_nanos > 0 {
                events_dispatched as f64 / (wall_nanos as f64 * 1e-9)
            } else {
                f64::INFINITY
            },
            wall_nanos,
            telemetry: outcome.telemetry,
            forensic_events,
        }
    }
}

/// The outcome of one sim-layer scenario.
#[derive(Clone, Debug)]
pub struct SimVerdict {
    /// Implementation name.
    pub implementation: String,
    /// Fault-model name.
    pub fault: String,
    /// Number of processes.
    pub n: usize,
    /// The scenario seed.
    pub seed: u64,
    /// The required predicate-window length.
    pub window: u64,
    /// Event-scheduler backend the run used.
    pub scheduler: SchedulerKind,
    /// Whether the predicate window was delivered at all.
    pub achieved: bool,
    /// Whether it was delivered within the theorem bound (+ slack).
    pub within_bound: bool,
    /// Good-period time until delivery.
    pub empirical_length: Option<f64>,
    /// The theorem bound for this scenario.
    pub bound: f64,
    /// The witnessing first round of the window.
    pub rho0: Option<u64>,
    /// The delivered-predicate violation, if the run broke the promise.
    pub violation: Option<String>,
    /// Highest round any process entered.
    pub max_round: u64,
    /// Send steps executed.
    pub send_steps: u64,
    /// Point-to-point transmissions.
    pub transmissions: u64,
    /// Transmissions dropped.
    pub dropped: u64,
    /// Crash events.
    pub crashes: u64,
    /// Unified message accounting (same struct as the model layer).
    pub messages: MessageStats,
    /// Events dispatched from the simulator's queue — the engine's unit
    /// of work.
    pub events_dispatched: u64,
    /// High-water mark of pending events in the scheduler.
    pub peak_queue_depth: u64,
    /// Dispatch throughput (`events_dispatched` over the scenario's wall
    /// clock).
    pub events_per_sec: f64,
    /// Wall-clock nanoseconds for this scenario.
    pub wall_nanos: u64,
    /// Telemetry digest (`Some` iff the scenario ran with the recorder
    /// on). A diagnostic — never part of equivalence comparisons.
    pub telemetry: Option<TelemetrySummary>,
    /// The drained flight-recorder ring, captured only when a
    /// telemetry-on run broke its promise — the raw material for a
    /// forensic artifact.
    pub forensic_events: Option<Vec<Event>>,
}

impl SimVerdict {
    /// Whether the run kept the implementation's promise.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violation.is_none()
    }

    /// The scenario identifier.
    #[must_use]
    pub fn id(&self) -> String {
        format!(
            "{}/{}/n{}/s{}",
            self.implementation, self.fault, self.n, self.seed
        )
    }
}

/// A builder for (implementation × link-fault × size × seed) sim-layer
/// sweeps — the lower-layer sibling of [`Sweep`](crate::Sweep).
#[derive(Clone, Debug)]
pub struct SimSweep {
    implementations: Vec<ImplementationSpec>,
    faults: Vec<LinkFaultSpec>,
    sizes: Vec<usize>,
    seeds: Vec<u64>,
    window: u64,
    scheduler: SchedulerKind,
    telemetry: bool,
    threads: Option<usize>,
    chunking: ChunkPolicy,
}

impl Default for SimSweep {
    fn default() -> Self {
        SimSweep {
            implementations: vec![ImplementationSpec::Alg2],
            faults: vec![LinkFaultSpec::GoodFromStart],
            sizes: vec![4],
            seeds: (0..5).collect(),
            window: 2,
            scheduler: SchedulerKind::default(),
            telemetry: false,
            threads: None,
            chunking: ChunkPolicy::from_env(),
        }
    }
}

impl SimSweep {
    /// An empty sweep with defaults (Alg2, good from start, n = 4,
    /// 5 seeds, window 2).
    #[must_use]
    pub fn new() -> Self {
        SimSweep::default()
    }

    /// Sets the implementation axis.
    #[must_use]
    pub fn implementations(
        mut self,
        implementations: impl IntoIterator<Item = ImplementationSpec>,
    ) -> Self {
        self.implementations = implementations.into_iter().collect();
        self
    }

    /// Sets the link-fault axis.
    #[must_use]
    pub fn faults(mut self, faults: impl IntoIterator<Item = LinkFaultSpec>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Sets the system-size axis. Sizes incompatible with an
    /// implementation's resilience (`f ≥ n/2` for Algorithm 3) are skipped
    /// for that implementation.
    #[must_use]
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Sets the seed axis.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the predicate-window length every scenario must deliver.
    #[must_use]
    pub fn window(mut self, window: u64) -> Self {
        assert!(window >= 1, "a predicate window spans at least one round");
        self.window = window;
        self
    }

    /// Sets the event-scheduler backend every scenario runs on (default:
    /// the calendar wheel). Running the same grid under
    /// [`SchedulerKind::Heap`] must produce identical verdicts — the
    /// sweep's divergence check and the lockstep suite enforce that.
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Runs every scenario with the flight recorder + metrics registry
    /// active (see [`Sweep::telemetry`](crate::Sweep::telemetry)).
    #[must_use]
    pub fn telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Pins the worker count (default: all cores).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker");
        self.threads = Some(threads);
        self
    }

    /// Sets the work-stealing chunk policy (see
    /// [`Sweep::chunking`](crate::Sweep::chunking)).
    #[must_use]
    pub fn chunking(mut self, policy: ChunkPolicy) -> Self {
        self.chunking = policy;
        self
    }

    /// Materialises the scenario grid in axis order
    /// (implementation, fault, size, seed).
    #[must_use]
    pub fn scenarios(&self) -> Vec<SimScenario> {
        let mut out = Vec::new();
        for &implementation in &self.implementations {
            for &fault in &self.faults {
                for &n in &self.sizes {
                    if let ImplementationSpec::Alg3 { f } = implementation {
                        if 2 * f >= n {
                            continue; // resilience bound f < n/2
                        }
                    }
                    for &seed in &self.seeds {
                        out.push(SimScenario {
                            implementation,
                            fault,
                            n,
                            seed,
                            window: self.window,
                            scheduler: self.scheduler,
                            telemetry: self.telemetry,
                        });
                    }
                }
            }
        }
        out
    }

    /// Runs every scenario across the worker pool and aggregates.
    #[must_use]
    pub fn run(&self) -> SimReport {
        let scenarios = self.scenarios();
        let threads = self.threads.unwrap_or_else(default_threads);
        let start = Instant::now();
        let verdicts: Vec<SimVerdict> = par_map_with_policy(
            &scenarios,
            threads,
            self.chunking,
            SimLayerScratch::new,
            |scratch, s| s.run_with(scratch),
        );
        SimReport::aggregate(
            verdicts,
            start.elapsed().as_secs_f64(),
            threads,
            self.chunking,
        )
    }
}

/// The aggregated outcome of a [`SimSweep`] run — what `BENCH_sweep.json`
/// serializes as its `sim_layer` section.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-scenario verdicts, in grid order.
    pub verdicts: Vec<SimVerdict>,
    /// Number of scenarios executed.
    pub scenarios: usize,
    /// Scenarios whose predicate window was delivered.
    pub achieved: usize,
    /// Scenarios that broke the implementation's promise.
    pub violations: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Throughput.
    pub scenarios_per_sec: f64,
    /// Events dispatched across the grid.
    pub events_dispatched: u64,
    /// Largest per-scenario queue high-water mark across the grid.
    pub peak_queue_depth: u64,
    /// Dispatch throughput over the sweep's wall clock.
    pub events_per_sec: f64,
    /// Worker threads used.
    pub threads: usize,
    /// The chunk policy the sweep ran under.
    pub chunk: ChunkPolicy,
    /// Unified message-cost totals (same shape as the model layer's).
    pub totals: MessageTotals,
    /// Point-to-point transmissions across the grid.
    pub transmissions: u64,
    /// Transmissions dropped across the grid.
    pub dropped: u64,
    /// Crash events across the grid.
    pub crashes: u64,
}

impl SimReport {
    /// Folds verdicts into a report.
    #[must_use]
    pub fn aggregate(
        verdicts: Vec<SimVerdict>,
        wall_seconds: f64,
        threads: usize,
        chunk: ChunkPolicy,
    ) -> Self {
        let scenarios = verdicts.len();
        let achieved = verdicts.iter().filter(|v| v.achieved).count();
        let violations = verdicts.iter().filter(|v| !v.is_ok()).count();
        let mut totals = MessageTotals::default();
        for v in &verdicts {
            totals.absorb_stats(&v.messages);
            totals.rounds += v.max_round;
        }
        let events_dispatched = verdicts.iter().map(|v| v.events_dispatched).sum::<u64>();
        SimReport {
            scenarios,
            achieved,
            violations,
            wall_seconds,
            scenarios_per_sec: if wall_seconds > 0.0 {
                scenarios as f64 / wall_seconds
            } else {
                f64::INFINITY
            },
            events_dispatched,
            peak_queue_depth: verdicts
                .iter()
                .map(|v| v.peak_queue_depth)
                .max()
                .unwrap_or(0),
            events_per_sec: if wall_seconds > 0.0 {
                events_dispatched as f64 / wall_seconds
            } else {
                f64::INFINITY
            },
            threads,
            chunk,
            totals,
            transmissions: verdicts.iter().map(|v| v.transmissions).sum(),
            dropped: verdicts.iter().map(|v| v.dropped).sum(),
            crashes: verdicts.iter().map(|v| v.crashes).sum(),
            verdicts,
        }
    }

    /// The verdicts that broke the implementation's promise.
    #[must_use]
    pub fn violating(&self) -> Vec<&SimVerdict> {
        self.verdicts.iter().filter(|v| !v.is_ok()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_cartesian_with_resilience_filter() {
        let sweep = SimSweep::new()
            .implementations([ImplementationSpec::Alg2, ImplementationSpec::Alg3 { f: 2 }])
            .faults([LinkFaultSpec::GoodFromStart])
            .sizes([4, 5])
            .seeds(0..3);
        // Alg2 runs at both sizes; Alg3 f=2 needs n ≥ 5.
        assert_eq!(sweep.scenarios().len(), 2 * 3 + 3);
    }

    #[test]
    fn nice_runs_deliver_their_predicates_within_bound() {
        let report = SimSweep::new()
            .implementations([ImplementationSpec::Alg2, ImplementationSpec::Alg3 { f: 1 }])
            .faults([LinkFaultSpec::GoodFromStart])
            .sizes([4])
            .seeds(0..3)
            .run();
        assert_eq!(report.scenarios, 6);
        assert_eq!(report.achieved, 6, "{:?}", report.violating());
        assert_eq!(report.violations, 0, "{:?}", report.violating());
        assert!(report.totals.delivered > 0);
        assert!(report.totals.payload_allocs > 0);
    }

    #[test]
    fn rough_runs_still_deliver_after_the_bad_period() {
        let report = SimSweep::new()
            .implementations([ImplementationSpec::Alg2])
            .faults([
                LinkFaultSpec::LossyThenGood {
                    bad_len: 40.0,
                    loss: 0.5,
                },
                LinkFaultSpec::CrashyThenGood { bad_len: 40.0 },
            ])
            .sizes([4])
            .seeds(0..3)
            .run();
        assert_eq!(report.violations, 0, "{:?}", report.violating());
        assert!(report.crashes > 0 || report.dropped > 0, "faults happened");
    }

    #[test]
    fn contact_plan_faults_deliver_after_the_horizon() {
        let report = SimSweep::new()
            .implementations([ImplementationSpec::Alg2, ImplementationSpec::Alg3 { f: 1 }])
            .faults([LinkFaultSpec::ContactPlanThenGood {
                plan: ContactPlan::Episodic {
                    dark: 3,
                    bright: 2,
                    cycles: 2,
                },
                round_len: 5.0,
            }])
            .sizes([4])
            .seeds(0..3)
            .run();
        assert_eq!(report.scenarios, 6);
        assert_eq!(report.violations, 0, "{:?}", report.violating());
        assert!(
            report.dropped > 0,
            "scheduled outages dropped transmissions"
        );
        for v in &report.verdicts {
            assert!(
                v.id().contains("contact_episodic_d3b2c2_rl500"),
                "{}",
                v.id()
            );
        }
    }

    #[test]
    fn fault_names_are_dot_free() {
        let faults = [
            LinkFaultSpec::GoodFromStart,
            LinkFaultSpec::LossyThenGood {
                bad_len: 40.0,
                loss: 0.5,
            },
            LinkFaultSpec::CrashyThenGood { bad_len: 37.5 },
            LinkFaultSpec::OmissiveThenGood {
                bad_len: 40.0,
                send: 0.25,
                recv: 0.3,
            },
            LinkFaultSpec::ContactPlanThenGood {
                plan: ContactPlan::StoreAndForward { dark: 8 },
                round_len: 2.5,
            },
        ];
        for f in &faults {
            assert!(!f.name().contains('.'), "float leaked into {}", f.name());
        }
        assert_eq!(faults[1].name(), "lossy_then_good_t4000_p500");
        assert_eq!(faults[2].name(), "crashy_then_good_t3750");
        assert_eq!(faults[4].name(), "contact_store_forward_d8_rl250");
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let sweep = SimSweep::new()
            .implementations([ImplementationSpec::Alg2])
            .faults([LinkFaultSpec::GoodFromStart])
            .sizes([4])
            .seeds(0..6);
        let seq = sweep.clone().threads(1).run();
        let par = sweep.threads(4).run();
        let key = |r: &SimReport| {
            r.verdicts
                .iter()
                .map(|v| (v.id(), v.empirical_length, v.max_round, v.transmissions))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&seq), key(&par), "sim scenarios are deterministic");
    }

    #[test]
    fn heap_and_wheel_grids_agree_verdict_for_verdict() {
        let sweep = SimSweep::new()
            .implementations([ImplementationSpec::Alg2, ImplementationSpec::Alg3 { f: 1 }])
            .faults([
                LinkFaultSpec::GoodFromStart,
                LinkFaultSpec::CrashyThenGood { bad_len: 40.0 },
            ])
            .sizes([4])
            .seeds(0..2);
        let wheel = sweep.clone().scheduler(SchedulerKind::Wheel).run();
        let heap = sweep.scheduler(SchedulerKind::Heap).run();
        let key = |r: &SimReport| {
            r.verdicts
                .iter()
                .map(|v| {
                    (
                        v.id(),
                        v.empirical_length,
                        v.max_round,
                        v.transmissions,
                        v.dropped,
                        v.crashes,
                        v.events_dispatched,
                        v.peak_queue_depth,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&wheel), key(&heap), "schedulers are bit-identical");
    }

    #[test]
    fn verdicts_carry_unified_accounting() {
        let v = SimScenario {
            implementation: ImplementationSpec::Alg2,
            fault: LinkFaultSpec::GoodFromStart,
            n: 4,
            seed: 1,
            window: 2,
            scheduler: SchedulerKind::default(),
            telemetry: false,
        }
        .run();
        assert!(v.is_ok(), "{:?}", v.violation);
        // Every delivery entered a buffer; every send step constructed a
        // wire envelope (plus payloads): the same MessageStats shape the
        // executor reports.
        assert!(v.messages.delivered > 0);
        assert!(v.messages.payload_allocs >= v.send_steps);
        assert!(v.messages.payload_reuses > 0, "pools engage within a run");
    }
}
