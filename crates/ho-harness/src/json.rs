//! A minimal JSON document model and serializer.
//!
//! The sweep report is consumed by `crates/bench` and committed as
//! `BENCH_sweep.json`; this module provides just enough JSON to write it
//! without an external serializer (the build environment vendors no
//! crates). Integers are kept exact — no `f64` round-trip for counters.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact unsigned integer (counters, seeds, rounds).
    UInt(u64),
    /// A floating-point number (rates, seconds).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key–value pairs.
    #[must_use]
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Serializes with two-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // Keep a decimal point so the value reads as a float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures() {
        let doc = Json::obj([
            ("count", Json::UInt(18446744073709551615)),
            ("rate", Json::Float(2.5)),
            ("name", Json::Str("sweep \"v1\"\n".into())),
            (
                "items",
                Json::Arr(vec![Json::UInt(1), Json::Null, Json::Bool(true)]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = doc.pretty();
        // Exact u64 survives.
        assert!(s.contains("18446744073709551615"));
        // Escaping.
        assert!(s.contains("sweep \\\"v1\\\"\\n"));
        // Keys are sorted deterministically.
        let ci = s.find("\"count\"").unwrap();
        let ri = s.find("\"rate\"").unwrap();
        assert!(ci < ri);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(3.0).pretty(), "3.0");
        assert_eq!(Json::UInt(3).pretty(), "3");
    }
}
