//! A minimal JSON document model and serializer.
//!
//! The sweep report is consumed by `crates/bench` and committed as
//! `BENCH_sweep.json`; this module provides just enough JSON to write it
//! without an external serializer (the build environment vendors no
//! crates). Integers are kept exact — no `f64` round-trip for counters.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact unsigned integer (counters, seeds, rounds).
    UInt(u64),
    /// A floating-point number (rates, seconds).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key–value pairs.
    #[must_use]
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Serializes with two-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // Keep a decimal point so the value reads as a float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses a JSON document — the inverse of [`Json::pretty`], used by
    /// the CI smoke check to prove the report round-trips. Numbers without
    /// `.`, `e` or `-` parse as [`Json::UInt`] (counters stay exact);
    /// everything else numeric parses as [`Json::Float`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| ParseError {
                message: format!("invalid number '{text}'"),
                at: start,
            })
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures() {
        let doc = Json::obj([
            ("count", Json::UInt(18446744073709551615)),
            ("rate", Json::Float(2.5)),
            ("name", Json::Str("sweep \"v1\"\n".into())),
            (
                "items",
                Json::Arr(vec![Json::UInt(1), Json::Null, Json::Bool(true)]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = doc.pretty();
        // Exact u64 survives.
        assert!(s.contains("18446744073709551615"));
        // Escaping.
        assert!(s.contains("sweep \\\"v1\\\"\\n"));
        // Keys are sorted deterministically.
        let ci = s.find("\"count\"").unwrap();
        let ri = s.find("\"rate\"").unwrap();
        assert!(ci < ri);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(3.0).pretty(), "3.0");
        assert_eq!(Json::UInt(3).pretty(), "3");
    }

    #[test]
    fn parse_round_trips_what_pretty_writes() {
        let doc = Json::obj([
            ("count", Json::UInt(u64::MAX)),
            ("rate", Json::Float(2.5)),
            ("whole", Json::Float(3.0)),
            ("name", Json::Str("sweep \"v1\"\n\u{1}".into())),
            (
                "items",
                Json::Arr(vec![Json::UInt(1), Json::Null, Json::Bool(true)]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj([])),
        ]);
        assert_eq!(Json::parse(&doc.pretty()), Ok(doc));
    }

    #[test]
    fn parse_distinguishes_uint_from_float() {
        assert_eq!(Json::parse("42"), Ok(Json::UInt(42)));
        assert_eq!(Json::parse("42.0"), Ok(Json::Float(42.0)));
        assert_eq!(Json::parse("-3"), Ok(Json::Float(-3.0)));
        assert_eq!(Json::parse("1e3"), Ok(Json::Float(1000.0)));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\": }", "tru", "\"open", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = Json::parse("[1, oops]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }
}
