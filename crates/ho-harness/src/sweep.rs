//! The sweep: a cartesian scenario grid executed across every core.

use std::time::Instant;

use crate::par::{default_threads, par_map_with_policy, ChunkPolicy};
use crate::report::SweepReport;
use crate::scenario::{AdversarySpec, AlgorithmSpec, Scenario, ScenarioScratch, Verdict};

/// A builder for (algorithm × adversary × size × seed) sweeps.
///
/// ```
/// use ho_harness::{AdversarySpec, AlgorithmSpec, Sweep};
///
/// let report = Sweep::new()
///     .algorithms([AlgorithmSpec::OneThirdRule])
///     .adversaries([AdversarySpec::RandomLoss { loss: 0.3 }])
///     .sizes([4, 7])
///     .seeds(0..50)
///     .max_rounds(80)
///     .run();
/// assert_eq!(report.verdicts.len(), 100);
/// assert_eq!(report.violations, 0, "OTR is safe under any HO assignment");
/// ```
#[derive(Clone, Debug)]
pub struct Sweep {
    algorithms: Vec<AlgorithmSpec>,
    adversaries: Vec<AdversarySpec>,
    sizes: Vec<usize>,
    seeds: Vec<u64>,
    max_rounds: u64,
    cooldown_rounds: u64,
    monitor_predicates: bool,
    telemetry: bool,
    threads: Option<usize>,
    chunking: ChunkPolicy,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep {
            algorithms: vec![AlgorithmSpec::OneThirdRule],
            adversaries: vec![AdversarySpec::FullDelivery],
            sizes: vec![4],
            seeds: (0..10).collect(),
            max_rounds: 100,
            cooldown_rounds: 0,
            monitor_predicates: false,
            telemetry: false,
            threads: None,
            chunking: ChunkPolicy::from_env(),
        }
    }
}

impl Sweep {
    /// An empty sweep with defaults (OTR, full delivery, n = 4, 10 seeds).
    #[must_use]
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Sets the algorithms axis.
    #[must_use]
    pub fn algorithms(mut self, algorithms: impl IntoIterator<Item = AlgorithmSpec>) -> Self {
        self.algorithms = algorithms.into_iter().collect();
        self
    }

    /// Sets the adversaries axis.
    #[must_use]
    pub fn adversaries(mut self, adversaries: impl IntoIterator<Item = AdversarySpec>) -> Self {
        self.adversaries = adversaries.into_iter().collect();
        self
    }

    /// Sets the system-size axis.
    #[must_use]
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Sets the seed axis.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the per-scenario round budget.
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Keeps every scenario running for `rounds` extra rounds after all
    /// processes decide, with the safety checker still observing — the
    /// lever for testing decision *irrevocability* rather than mere
    /// decision.
    #[must_use]
    pub fn cooldown_rounds(mut self, rounds: u64) -> Self {
        self.cooldown_rounds = rounds;
        self
    }

    /// Streams a predicate monitor over every scenario: each verdict gains
    /// a `predicates` summary (kernel non-emptiness, largest kernel and
    /// space-uniform windows, first `P2_otr` round) evaluated online on
    /// the executor's round-observer hook — the trace stays in
    /// statistics-only mode and no row is ever retained.
    #[must_use]
    pub fn monitor_predicates(mut self, monitor: bool) -> Self {
        self.monitor_predicates = monitor;
        self
    }

    /// Runs every scenario with the flight recorder + metrics registry
    /// active (see [`ho_core::telemetry`]): each verdict gains a
    /// `telemetry` digest and, on a violation, the drained event ring.
    /// Recording only observes the run — verdicts are bit-identical to an
    /// unrecorded sweep (`tests/telemetry_equivalence.rs` pins this).
    #[must_use]
    pub fn telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Pins the worker count (default: all cores).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker");
        self.threads = Some(threads);
        self
    }

    /// Sets the work-stealing chunk policy (default:
    /// [`ChunkPolicy::from_env`] — the built-in 16-claims/64-max defaults
    /// with `HO_SWEEP_CHUNK_TARGET` / `HO_SWEEP_CHUNK_MAX` overrides). The
    /// chosen policy is recorded in the report, so tuning runs are
    /// self-describing.
    #[must_use]
    pub fn chunking(mut self, policy: ChunkPolicy) -> Self {
        self.chunking = policy;
        self
    }

    /// Materialises the scenario grid in axis order
    /// (algorithm, adversary, size, seed).
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(
            self.algorithms.len() * self.adversaries.len() * self.sizes.len() * self.seeds.len(),
        );
        for &algorithm in &self.algorithms {
            for adversary in &self.adversaries {
                for &n in &self.sizes {
                    for &seed in &self.seeds {
                        out.push(Scenario {
                            algorithm,
                            adversary: *adversary,
                            n,
                            seed,
                            max_rounds: self.max_rounds,
                            cooldown_rounds: self.cooldown_rounds,
                            monitor_predicates: self.monitor_predicates,
                            telemetry: self.telemetry,
                        });
                    }
                }
            }
        }
        out
    }

    /// Runs every scenario across the worker pool and aggregates. Workers
    /// claim chunks of the grid and carry one [`ScenarioScratch`] each, so
    /// round buffers are reused from scenario to scenario.
    #[must_use]
    pub fn run(&self) -> SweepReport {
        let scenarios = self.scenarios();
        let threads = self.threads.unwrap_or_else(default_threads);
        let start = Instant::now();
        let verdicts: Vec<Verdict> = par_map_with_policy(
            &scenarios,
            threads,
            self.chunking,
            ScenarioScratch::default,
            |scratch, s| s.run_reusing(scratch),
        );
        SweepReport::aggregate(verdicts, start.elapsed(), threads, self.chunking)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_cartesian() {
        let sweep = Sweep::new()
            .algorithms(AlgorithmSpec::ALL)
            .adversaries([
                AdversarySpec::FullDelivery,
                AdversarySpec::RandomLoss { loss: 0.2 },
            ])
            .sizes([4, 5])
            .seeds(0..3);
        assert_eq!(sweep.scenarios().len(), 3 * 2 * 2 * 3);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let sweep = Sweep::new()
            .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
            .adversaries([AdversarySpec::RandomLoss { loss: 0.4 }])
            .sizes([4])
            .seeds(0..16)
            .max_rounds(60);
        let seq = sweep.clone().threads(1).run();
        let par = sweep.threads(4).run();
        let key = |r: &SweepReport| {
            r.verdicts
                .iter()
                .map(|v| (v.id(), v.decided_round, v.decision_value))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&seq), key(&par), "scenario outcomes are deterministic");
    }

    #[test]
    fn monitored_sweep_reports_predicates_grid_wide() {
        let report = Sweep::new()
            .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
            .adversaries([
                AdversarySpec::FullDelivery,
                AdversarySpec::RandomLoss { loss: 0.3 },
            ])
            .sizes([4])
            .seeds(0..4)
            .monitor_predicates(true)
            .run();
        assert_eq!(report.predicate_totals.monitored, report.scenarios);
        assert_eq!(
            report.predicate_totals.rounds, report.totals.rounds,
            "every executed round is observed"
        );
        assert!(report.predicate_totals.p2otr_scenarios > 0);
        // The predicate fields survive the JSON round trip.
        let json = report.to_json(true).pretty();
        let parsed = crate::Json::parse(&json).expect("round-trips");
        let crate::Json::Obj(map) = parsed else {
            panic!("object expected")
        };
        assert!(map.contains_key("predicates"));
        assert!(json.contains("first_p2otr"));
        // Unmonitored sweeps carry no predicate section.
        let plain = Sweep::new().seeds(0..2).run();
        assert_eq!(plain.predicate_totals.monitored, 0);
        assert!(!plain.to_json(true).pretty().contains("\"predicates\""));
    }

    #[test]
    fn report_aggregates_match_verdicts() {
        let report = Sweep::new()
            .adversaries([AdversarySpec::FullDelivery])
            .sizes([4])
            .seeds(0..5)
            .run();
        assert_eq!(report.scenarios, 5);
        assert_eq!(report.decided, 5);
        assert_eq!(report.violations, 0);
        let allocs: u64 = report.verdicts.iter().map(|v| v.payload_allocs).sum();
        assert_eq!(report.totals.payload_allocs, allocs);
        assert!(report.scenarios_per_sec > 0.0);
    }
}
