//! The scenario space: (algorithm × adversary × size × seed) descriptors
//! and the execution of one scenario on the round-synchronous machine.

use ho_core::adversary::{
    Adversary, CrashRecovery, EventuallyGood, FullDelivery, KernelOnly, Partition, RandomLoss,
};
use ho_core::algorithms::{LastVoting, OneThirdRule, UniformVoting};
use ho_core::contact::{ContactPlan, ContactPlanAdversary};
use ho_core::executor::{RoundExecutor, RoundScratch, RunError};
use ho_core::process::ProcessSet;
use ho_core::round::Round;
use ho_core::telemetry::{Event, EventKind, Telemetry, TelemetrySummary};
use ho_core::trace::TraceMode;
use ho_core::HoAlgorithm;
use ho_predicates::monitor::{PredicateSummary, ScenarioMonitor};

/// Which consensus algorithm a scenario runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmSpec {
    /// Algorithm 1 of the paper (broadcast, `P_otr`).
    OneThirdRule,
    /// Two-round voting phases (broadcast, needs `P_nek` for safety).
    UniformVoting,
    /// HO Paxos: four-round coordinator phases (unicast-heavy).
    LastVoting,
}

impl AlgorithmSpec {
    /// All supported algorithms.
    pub const ALL: [AlgorithmSpec; 3] = [
        AlgorithmSpec::OneThirdRule,
        AlgorithmSpec::UniformVoting,
        AlgorithmSpec::LastVoting,
    ];

    /// Stable name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmSpec::OneThirdRule => "one_third_rule",
            AlgorithmSpec::UniformVoting => "uniform_voting",
            AlgorithmSpec::LastVoting => "last_voting",
        }
    }
}

/// Which fault environment a scenario runs under. Parameters that the
/// underlying adversaries draw randomly are derived deterministically from
/// the scenario seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdversarySpec {
    /// No transmission faults.
    FullDelivery,
    /// Independent per-transmission loss (the DT class).
    RandomLoss {
        /// Loss probability in `[0, 1]`.
        loss: f64,
    },
    /// A static partition into `blocks` contiguous blocks.
    Partition {
        /// Number of blocks (≥ 1).
        blocks: usize,
    },
    /// Transient outages: each process is down for a seed-derived interval.
    CrashRecovery,
    /// Aggressive loss that always preserves a non-empty kernel
    /// (UniformVoting's safety environment).
    KernelOnly {
        /// Loss probability for non-pivot transmissions.
        loss: f64,
    },
    /// Chaos, then uniform delivery over all of Π (the liveness
    /// environment of Theorem 1).
    EventuallyGood {
        /// Rounds of chaos before the good period.
        bad_rounds: u64,
        /// Loss probability during the chaos.
        loss: f64,
    },
    /// A deterministic schedule of directed link up/down intervals
    /// (episodic partitions, rotating contact windows, store-and-forward
    /// darkness), permanently all-up from the plan's `good_from()` round.
    ContactPlan {
        /// The link schedule.
        plan: ContactPlan,
    },
}

/// A probability rendered as an integer permille, keeping report names
/// free of `.` (which the scenario-id scheme reserves for nothing, but a
/// float's `Display` makes `0.3` and `0.30`-style labels ambiguous across
/// grids).
pub(crate) fn permille(p: f64) -> u64 {
    (p * 1000.0).round() as u64
}

impl AdversarySpec {
    /// Stable name used in reports. Probabilities render as integer
    /// permille (`random_loss_p300` = 30% loss) so every name is dot-free
    /// and two grids can never collide on float formatting.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            AdversarySpec::FullDelivery => "full_delivery".into(),
            AdversarySpec::RandomLoss { loss } => format!("random_loss_p{}", permille(*loss)),
            AdversarySpec::Partition { blocks } => format!("partition_{blocks}"),
            AdversarySpec::CrashRecovery => "crash_recovery".into(),
            AdversarySpec::KernelOnly { loss } => format!("kernel_only_p{}", permille(*loss)),
            AdversarySpec::EventuallyGood { bad_rounds, loss } => {
                format!("eventually_good_{bad_rounds}_p{}", permille(*loss))
            }
            AdversarySpec::ContactPlan { plan } => plan.label(),
        }
    }

    /// The contact plan, when this spec is one.
    #[must_use]
    pub fn contact_plan(&self) -> Option<ContactPlan> {
        match self {
            AdversarySpec::ContactPlan { plan } => Some(*plan),
            _ => None,
        }
    }

    /// Builds the concrete adversary for `n` processes under `seed`.
    #[must_use]
    pub fn build(&self, n: usize, seed: u64) -> Box<dyn Adversary + Send> {
        match *self {
            AdversarySpec::FullDelivery => Box::new(FullDelivery),
            AdversarySpec::RandomLoss { loss } => Box::new(RandomLoss::new(loss, seed)),
            AdversarySpec::Partition { blocks } => {
                let blocks = blocks.clamp(1, n);
                // Contiguous blocks of (roughly) equal size.
                let per = n.div_ceil(blocks);
                let sets: Vec<ProcessSet> = (0..blocks)
                    .map(|b| ProcessSet::from_indices((b * per)..(((b + 1) * per).min(n))))
                    .filter(|s| !s.is_empty())
                    .collect();
                Box::new(Partition::new(sets))
            }
            AdversarySpec::CrashRecovery => {
                // Seed-derived outages: each process is down once, for a
                // window whose start and length depend on the seed.
                let outages: Vec<(usize, Round, Round)> = (0..n)
                    .map(|q| {
                        let h = mix(seed, q as u64);
                        let start = 1 + h % 8;
                        let len = 1 + (h >> 8) % 4;
                        (q, Round(start), Round(start + len))
                    })
                    .collect();
                Box::new(CrashRecovery::new(n, &outages))
            }
            AdversarySpec::KernelOnly { loss } => Box::new(KernelOnly::new(loss, seed)),
            AdversarySpec::EventuallyGood { bad_rounds, loss } => Box::new(EventuallyGood::new(
                bad_rounds,
                ProcessSet::full(n),
                loss,
                seed,
            )),
            AdversarySpec::ContactPlan { plan } => Box::new(ContactPlanAdversary::new(plan, seed)),
        }
    }
}

/// SplitMix64-style mixing for seed-derived scenario parameters.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One cell of the sweep: a fully determined run.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The algorithm under test.
    pub algorithm: AlgorithmSpec,
    /// The fault environment.
    pub adversary: AdversarySpec,
    /// Number of processes.
    pub n: usize,
    /// The seed deriving initial values and adversary randomness.
    pub seed: u64,
    /// Round budget before the run is declared undecided.
    pub max_rounds: u64,
    /// Extra rounds to keep executing *after* every process has decided,
    /// with the safety checker still observing — this is what turns
    /// "decided" into "decided irrevocably": a decision revoked or changed
    /// in any cooldown round surfaces as a violation.
    pub cooldown_rounds: u64,
    /// Whether to stream a [`ScenarioMonitor`] over the run and report a
    /// [`PredicateSummary`] in the verdict. Monitoring rides the
    /// executor's round-observer hook, so the trace still runs in
    /// statistics-only mode — no row is ever retained.
    pub monitor_predicates: bool,
    /// Whether to run with the flight recorder + metrics registry active
    /// (see [`ho_core::telemetry`]). Recording only observes the run —
    /// the verdict is bit-identical either way — and adds a
    /// [`TelemetrySummary`] to the verdict, plus the drained event ring
    /// when the run ends in a violation.
    pub telemetry: bool,
}

impl Scenario {
    /// Seed-derived initial values: a small value domain so that quorums
    /// and ties are actually exercised.
    #[must_use]
    pub fn initial_values(&self) -> Vec<u64> {
        (0..self.n)
            .map(|p| mix(self.seed, 0x5eed ^ p as u64) % 5)
            .collect()
    }

    /// A stable identifier for reports.
    #[must_use]
    pub fn id(&self) -> String {
        format!(
            "{}/{}/n{}/s{}",
            self.algorithm.name(),
            self.adversary.name(),
            self.n,
            self.seed
        )
    }

    /// Executes the scenario to completion and reports the verdict.
    #[must_use]
    pub fn run(&self) -> Verdict {
        self.run_reusing(&mut ScenarioScratch::default())
    }

    /// Executes the scenario reusing a worker-owned scratch: the executor's
    /// type-independent round buffers survive from scenario to scenario, so
    /// a sweep worker stops paying the warm-up allocations per scenario.
    /// The verdict is identical to [`Scenario::run`]'s.
    #[must_use]
    pub fn run_reusing(&self, scratch: &mut ScenarioScratch) -> Verdict {
        match self.algorithm {
            AlgorithmSpec::OneThirdRule => self.run_with(OneThirdRule::new(self.n), scratch),
            AlgorithmSpec::UniformVoting => self.run_with(UniformVoting::new(self.n), scratch),
            AlgorithmSpec::LastVoting => self.run_with(LastVoting::new(self.n), scratch),
        }
    }

    fn run_with<A>(&self, alg: A, scratch: &mut ScenarioScratch) -> Verdict
    where
        A: HoAlgorithm<Value = u64>,
    {
        let start = std::time::Instant::now();
        let mut adversary = self.adversary.build(self.n, self.seed);
        // The sweep never reads rows back — verdicts come from the
        // consensus checker, the running stats and (when enabled) the
        // streaming predicate monitor — so the trace runs in the
        // statistics-only mode; with monitoring off the per-round support
        // sets are never even computed.
        let mut exec = RoundExecutor::with_scratch(
            alg,
            self.initial_values(),
            TraceMode::Off,
            std::mem::take(&mut scratch.round),
        );
        if self.telemetry {
            // Reuse the worker's ring across scenarios: the first
            // telemetry-on scenario allocates it, the rest reset it.
            let mut telemetry = std::mem::take(&mut scratch.telemetry);
            if !telemetry.is_on() {
                telemetry = Telemetry::on();
            }
            telemetry.reset();
            exec.set_telemetry(telemetry);
        }
        let mut bank = self
            .monitor_predicates
            .then(|| ScenarioMonitor::new(self.n));
        let mut observer = bank.as_mut();
        let (decided_round, mut violation) = match exec.run_until_all_decided_observed(
            &mut adversary,
            self.max_rounds,
            &mut observer,
        ) {
            Ok(r) => (Some(r.get()), None),
            Err(RunError::MaxRoundsExceeded { .. }) => (None, None),
            Err(RunError::Violation(v)) => (None, Some(v.to_string())),
        };
        if violation.is_none() && self.cooldown_rounds > 0 {
            // Keep the machine running past the decision (or the budget):
            // the checker observes every round, so a revoked or changed
            // decision here becomes the verdict's violation.
            if let Err(RunError::Violation(v)) =
                exec.run_observed(&mut adversary, self.cooldown_rounds, &mut observer)
            {
                violation = Some(v.to_string());
            }
        }
        let stats = exec.message_stats();
        let predicates = bank.map(|b| b.summary());
        let mut telemetry_handle = exec.take_telemetry();
        if let Some(p) = &predicates {
            // The model layer's witness: the first round of a P2_otr
            // window, stamped after the run (the monitor streams, so
            // there is no per-round hook to catch it live).
            if let Some(r) = p.first_p2otr {
                telemetry_handle.record(
                    r,
                    r as f64,
                    Event::ALL,
                    EventKind::PredicateWitness { witness_round: r },
                );
            }
        }
        let telemetry = telemetry_handle.summary();
        // Violations are rare and terminal, so draining the ring into an
        // owned forensic payload may allocate — it is outside the round
        // loop and outside the steady-state alloc proof.
        let forensic_events = (violation.is_some() && telemetry_handle.is_on())
            .then(|| telemetry_handle.events().copied().collect());
        scratch.telemetry = telemetry_handle;
        let verdict = Verdict {
            algorithm: self.algorithm.name(),
            adversary: self.adversary.name(),
            n: self.n,
            seed: self.seed,
            decided_round,
            decided_processes: exec.checker().decided().len(),
            decision_value: exec.checker().decision_value().copied(),
            violation,
            rounds_run: exec.current_round().get(),
            payload_allocs: stats.payload_allocs,
            payload_reuses: stats.payload_reuses,
            delivered_messages: stats.delivered,
            legacy_clones: stats.legacy_clones(),
            predicates,
            telemetry,
            forensic_events,
            wall_nanos: start.elapsed().as_nanos() as u64,
        };
        // Hand the round buffers back for the next scenario.
        scratch.round = exec.into_scratch();
        verdict
    }
}

/// Worker-owned buffers reused across scenarios by
/// [`Scenario::run_reusing`] (and the rsm layer's
/// [`RsmScenario::run_reusing`](crate::rsm::RsmScenario::run_reusing)).
#[derive(Debug, Default)]
pub struct ScenarioScratch {
    pub(crate) round: RoundScratch,
    /// Per-shard round buffers for the rsm layer's sharded scenarios
    /// (resized to the scenario's shard count on use).
    pub(crate) shard_rounds: Vec<RoundScratch>,
    /// The worker's flight-recorder ring, kept warm across scenarios:
    /// the first telemetry-on scenario allocates it, every later one
    /// resets and reuses it (off scenarios leave it untouched).
    pub(crate) telemetry: Telemetry,
}

/// The outcome of one scenario.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Adversary name.
    pub adversary: String,
    /// Number of processes.
    pub n: usize,
    /// The scenario seed.
    pub seed: u64,
    /// The round by which *all* processes had decided, if they did.
    pub decided_round: Option<u64>,
    /// How many processes had decided when the run ended.
    pub decided_processes: usize,
    /// The common decision value, if anyone decided.
    pub decision_value: Option<u64>,
    /// A consensus safety violation (agreement, integrity/validity, or
    /// irrevocability), if the checker caught one.
    pub violation: Option<String>,
    /// Rounds actually executed.
    pub rounds_run: u64,
    /// Payload constructions under the SendPlan kernel (O(n) per broadcast
    /// round).
    pub payload_allocs: u64,
    /// Payload constructions written into recycled buffers — zero
    /// allocator traffic (fresh allocations are
    /// `payload_allocs − payload_reuses`).
    pub payload_reuses: u64,
    /// Messages delivered into mailboxes.
    pub delivered_messages: u64,
    /// What the per-destination scheme would have deep-cloned (O(n²) per
    /// broadcast round).
    pub legacy_clones: u64,
    /// Streamed predicate statistics (`Some` iff
    /// [`Scenario::monitor_predicates`] was set): which communication
    /// predicates held, when, and for how long.
    pub predicates: Option<PredicateSummary>,
    /// The run's telemetry digest (`Some` iff [`Scenario::telemetry`]
    /// was set): event counts by kind, ring drop count, per-phase time
    /// breakdown.
    pub telemetry: Option<TelemetrySummary>,
    /// The drained flight-recorder ring, present only when the run ended
    /// in a safety violation with telemetry on — the raw material of the
    /// forensic artifact.
    pub forensic_events: Option<Vec<Event>>,
    /// Wall-clock nanoseconds for this scenario.
    pub wall_nanos: u64,
}

impl Verdict {
    /// The scenario identifier ([`Scenario::id`]), derived on demand —
    /// building the string per scenario was measurable sweep overhead.
    #[must_use]
    pub fn id(&self) -> String {
        format!(
            "{}/{}/n{}/s{}",
            self.algorithm, self.adversary, self.n, self.seed
        )
    }

    /// Whether the run was safe (possibly undecided, but never wrong).
    #[must_use]
    pub fn is_safe(&self) -> bool {
        self.violation.is_none()
    }

    /// Whether every process decided within the budget.
    #[must_use]
    pub fn all_decided(&self) -> bool {
        self.decided_round.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(algorithm: AlgorithmSpec, adversary: AdversarySpec) -> Scenario {
        Scenario {
            algorithm,
            adversary,
            n: 4,
            seed: 7,
            max_rounds: 60,
            cooldown_rounds: 0,
            monitor_predicates: false,
            telemetry: false,
        }
    }

    #[test]
    fn monitoring_is_verdict_neutral_and_fills_predicates() {
        for adversary in [
            AdversarySpec::FullDelivery,
            AdversarySpec::RandomLoss { loss: 0.3 },
            AdversarySpec::KernelOnly { loss: 0.8 },
        ] {
            let mut s = scenario(AlgorithmSpec::OneThirdRule, adversary);
            s.cooldown_rounds = 10;
            let plain = s.run();
            s.monitor_predicates = true;
            let monitored = s.run();
            assert_eq!(plain.decided_round, monitored.decided_round);
            assert_eq!(plain.decision_value, monitored.decision_value);
            assert_eq!(plain.violation, monitored.violation);
            assert_eq!(plain.delivered_messages, monitored.delivered_messages);
            assert!(plain.predicates.is_none());
            let p = monitored.predicates.expect("summary present");
            assert_eq!(p.rounds, monitored.rounds_run, "every round observed");
        }
    }

    #[test]
    fn monitored_full_delivery_sees_p2otr_immediately() {
        let mut s = scenario(AlgorithmSpec::OneThirdRule, AdversarySpec::FullDelivery);
        s.monitor_predicates = true;
        s.cooldown_rounds = 5;
        let p = s.run().predicates.unwrap();
        assert_eq!(p.first_p2otr, Some(1), "rounds 1 and 2 are both full");
        assert_eq!(p.nek_rounds, p.rounds, "kernel is Π every round");
        assert_eq!(p.first_empty_kernel, None);
        assert_eq!(p.largest_kernel_window, p.rounds);
        assert_eq!(p.largest_uniform_window, p.rounds);
    }

    #[test]
    fn monitored_kernel_only_preserves_nek() {
        // The KernelOnly adversary exists to preserve UniformVoting's
        // safety environment; the monitor must agree.
        let mut s = scenario(
            AlgorithmSpec::UniformVoting,
            AdversarySpec::KernelOnly { loss: 0.8 },
        );
        s.monitor_predicates = true;
        for seed in 0..10 {
            s.seed = seed;
            let v = s.run();
            let p = v.predicates.unwrap();
            assert_eq!(
                p.first_empty_kernel, None,
                "seed {seed}: kernel_only emptied the kernel"
            );
            assert_eq!(p.nek_rounds, p.rounds);
            assert!(v.is_safe(), "seed {seed}: UV is safe under P_nek");
        }
    }

    #[test]
    fn cooldown_rounds_run_past_the_decision() {
        let mut s = scenario(AlgorithmSpec::OneThirdRule, AdversarySpec::FullDelivery);
        let before = s.run();
        s.cooldown_rounds = 25;
        let after = s.run();
        assert_eq!(before.decided_round, after.decided_round);
        assert!(after.is_safe(), "decisions must survive the cooldown");
        assert_eq!(
            after.rounds_run,
            before.rounds_run + 25,
            "cooldown rounds actually execute"
        );
    }

    #[test]
    fn full_delivery_decides_quickly() {
        let v = scenario(AlgorithmSpec::OneThirdRule, AdversarySpec::FullDelivery).run();
        assert!(v.is_safe());
        assert!(v.all_decided());
        assert!(v.decided_round.unwrap() <= 3);
        // Validity: the decision is one of the proposals.
        let s = scenario(AlgorithmSpec::OneThirdRule, AdversarySpec::FullDelivery);
        assert!(s.initial_values().contains(&v.decision_value.unwrap()));
    }

    #[test]
    fn partition_blocks_are_disjoint_and_cover() {
        for n in 1..=9 {
            for blocks in 1..=4 {
                let _ = AdversarySpec::Partition { blocks }.build(n, 1);
            }
        }
    }

    #[test]
    fn verdict_counts_plan_allocs_below_legacy_clones() {
        let v = scenario(
            AlgorithmSpec::OneThirdRule,
            AdversarySpec::EventuallyGood {
                bad_rounds: 3,
                loss: 0.5,
            },
        )
        .run();
        // Broadcast algorithm at n = 4: the plan kernel allocates n per
        // round, the legacy scheme would clone up to n² per round.
        assert!(v.payload_allocs < v.legacy_clones);
        assert_eq!(v.payload_allocs, 4 * v.rounds_run);
    }

    #[test]
    fn scratch_reuse_is_verdict_neutral() {
        // One scratch threaded through mixed algorithms and sizes must
        // reproduce the fresh-scratch verdicts exactly.
        let mut scratch = ScenarioScratch::default();
        for (algorithm, n) in [
            (AlgorithmSpec::OneThirdRule, 7),
            (AlgorithmSpec::LastVoting, 4),
            (AlgorithmSpec::UniformVoting, 10),
            (AlgorithmSpec::OneThirdRule, 4),
        ] {
            let s = Scenario {
                algorithm,
                adversary: AdversarySpec::RandomLoss { loss: 0.3 },
                n,
                seed: 11,
                max_rounds: 60,
                cooldown_rounds: 5,
                monitor_predicates: false,
                telemetry: false,
            };
            let fresh = s.run();
            let reused = s.run_reusing(&mut scratch);
            assert_eq!(fresh.decided_round, reused.decided_round);
            assert_eq!(fresh.decision_value, reused.decision_value);
            assert_eq!(fresh.violation, reused.violation);
            assert_eq!(fresh.delivered_messages, reused.delivered_messages);
            assert_eq!(fresh.payload_allocs, reused.payload_allocs);
        }
    }

    #[test]
    fn broadcast_scenarios_reuse_almost_every_payload() {
        let v = scenario(AlgorithmSpec::OneThirdRule, AdversarySpec::FullDelivery).run();
        // OneThirdRule writes through the plan slot: only round 1 allocates.
        assert_eq!(v.payload_allocs - v.payload_reuses, v.n as u64);
    }

    #[test]
    fn same_seed_same_verdict() {
        let s = scenario(
            AlgorithmSpec::LastVoting,
            AdversarySpec::RandomLoss { loss: 0.3 },
        );
        let a = s.run();
        let b = s.run();
        assert_eq!(a.decided_round, b.decided_round);
        assert_eq!(a.decision_value, b.decision_value);
        assert_eq!(a.delivered_messages, b.delivered_messages);
    }

    #[test]
    fn crash_recovery_outages_are_seed_deterministic() {
        let s = scenario(AlgorithmSpec::OneThirdRule, AdversarySpec::CrashRecovery);
        assert_eq!(s.run().decided_round, s.run().decided_round);
    }

    #[test]
    fn contact_plan_scenarios_decide_after_reconnection() {
        // OTR cannot decide across an episodic partition or a rotating
        // window, but every plan ends in permanent full delivery — the
        // run must decide there and stay safe throughout.
        for plan in [
            ContactPlan::Episodic {
                dark: 4,
                bright: 1,
                cycles: 3,
            },
            ContactPlan::Rotating {
                window: 3,
                windows: 4,
            },
            ContactPlan::StoreAndForward { dark: 12 },
        ] {
            let mut s = scenario(
                AlgorithmSpec::OneThirdRule,
                AdversarySpec::ContactPlan { plan },
            );
            s.max_rounds = plan.good_from() + 20;
            s.cooldown_rounds = 5;
            for seed in 0..3 {
                s.seed = seed;
                let v = s.run();
                assert!(v.is_safe(), "{}: {:?}", v.id(), v.violation);
                assert!(v.all_decided(), "{}: undecided", v.id());
                assert!(
                    v.decided_round.unwrap() <= plan.good_from() + 3,
                    "{}: decided only at {:?}",
                    v.id(),
                    v.decided_round
                );
            }
        }
    }

    #[test]
    fn adversary_names_are_dot_free_and_distinct() {
        let specs = [
            AdversarySpec::FullDelivery,
            AdversarySpec::RandomLoss { loss: 0.2 },
            AdversarySpec::RandomLoss { loss: 0.3 },
            AdversarySpec::Partition { blocks: 2 },
            AdversarySpec::CrashRecovery,
            AdversarySpec::KernelOnly { loss: 0.8 },
            AdversarySpec::EventuallyGood {
                bad_rounds: 6,
                loss: 0.5,
            },
            AdversarySpec::ContactPlan {
                plan: ContactPlan::StoreAndForward { dark: 8 },
            },
        ];
        let names: Vec<String> = specs.iter().map(AdversarySpec::name).collect();
        for name in &names {
            assert!(!name.contains('.'), "float leaked into {name}");
        }
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "{names:?}");
        assert_eq!(names[1], "random_loss_p200");
        assert_eq!(names[6], "eventually_good_6_p500");
    }
}
