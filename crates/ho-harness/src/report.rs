//! Aggregated sweep results and their JSON form.

use std::collections::BTreeMap;
use std::time::Duration;

use ho_core::telemetry::{Event, EventKind, Phase, TelemetrySummary};
use ho_predicates::monitor::PredicateSummary;

use crate::json::Json;
use crate::par::ChunkPolicy;
use crate::scenario::Verdict;

/// Incremental object builder shared by every verdict/summary emitter —
/// the model-layer, sim-layer and rsm-layer documents all spell optional
/// counters (`value | null`) and scalar fields the same way, so none of
/// them hand-rolls `map_or(Json::Null, …)` chains.
#[derive(Debug, Default)]
pub struct JsonFields(Vec<(String, Json)>);

impl JsonFields {
    /// An empty object under construction.
    #[must_use]
    pub fn new() -> Self {
        JsonFields::default()
    }

    /// Appends an already-built value.
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.0.push((key.to_owned(), value));
        self
    }

    /// Appends an exact unsigned counter.
    #[must_use]
    pub fn uint(self, key: &str, value: u64) -> Self {
        self.field(key, Json::UInt(value))
    }

    /// Appends an optional counter (`null` when absent).
    #[must_use]
    pub fn opt_uint(self, key: &str, value: Option<u64>) -> Self {
        self.field(key, value.map_or(Json::Null, Json::UInt))
    }

    /// Appends a floating-point rate.
    #[must_use]
    pub fn float(self, key: &str, value: f64) -> Self {
        self.field(key, Json::Float(value))
    }

    /// Appends an optional floating-point rate (`null` when the quantity
    /// is undefined — e.g. a ratio over an empty denominator).
    #[must_use]
    pub fn opt_float(self, key: &str, value: Option<f64>) -> Self {
        self.field(key, value.map_or(Json::Null, Json::Float))
    }

    /// Appends a boolean.
    #[must_use]
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.field(key, Json::Bool(value))
    }

    /// Appends a string.
    #[must_use]
    pub fn str(self, key: &str, value: impl Into<String>) -> Self {
        self.field(key, Json::Str(value.into()))
    }

    /// Appends an optional string (`null` when absent).
    #[must_use]
    pub fn opt_str(self, key: &str, value: Option<String>) -> Self {
        self.field(key, value.map_or(Json::Null, Json::Str))
    }

    /// Finishes the object.
    #[must_use]
    pub fn build(self) -> Json {
        Json::Obj(self.0.into_iter().collect())
    }
}

/// Message-cost totals across a sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageTotals {
    /// Payload constructions under the SendPlan kernel.
    pub payload_allocs: u64,
    /// Constructions served from recycled buffers (no allocator traffic).
    pub payload_reuses: u64,
    /// Messages delivered into mailboxes.
    pub delivered: u64,
    /// What the per-destination scheme would have deep-cloned.
    pub legacy_clones: u64,
    /// Rounds executed across all scenarios.
    pub rounds: u64,
}

impl MessageTotals {
    /// Constructions that actually hit the allocator.
    #[must_use]
    pub fn fresh_allocs(&self) -> u64 {
        self.payload_allocs - self.payload_reuses
    }

    /// Folds one run's [`MessageStats`](ho_core::MessageStats) — from
    /// either execution layer — into the totals. (The legacy-clone
    /// counterfactual only exists on the model layer, where `delivered`
    /// doubles as that count; sim-layer callers leave it untouched.)
    pub fn absorb_stats(&mut self, stats: &ho_core::MessageStats) {
        self.payload_allocs += stats.payload_allocs;
        self.payload_reuses += stats.payload_reuses;
        self.delivered += stats.delivered;
    }
}

/// Grid-wide predicate statistics, aggregated over the monitored verdicts
/// of a sweep (all zero when the sweep ran unmonitored).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredicateTotals {
    /// Verdicts that carried a [`PredicateSummary`].
    pub monitored: usize,
    /// Rounds observed across monitored scenarios.
    pub rounds: u64,
    /// Rounds with a non-empty kernel (`P_nek` held).
    pub nek_rounds: u64,
    /// Monitored scenarios in which some round had an empty kernel.
    pub empty_kernel_scenarios: usize,
    /// Monitored scenarios that achieved `P2_otr(Π)`.
    pub p2otr_scenarios: usize,
    /// The largest kernel window seen in any monitored scenario.
    pub largest_kernel_window: u64,
    /// The largest space-uniform window seen in any monitored scenario.
    pub largest_uniform_window: u64,
}

impl PredicateTotals {
    /// Folds another report's totals into this one (used when a grid is
    /// split across several sweeps).
    pub fn merge(&mut self, other: &PredicateTotals) {
        self.monitored += other.monitored;
        self.rounds += other.rounds;
        self.nek_rounds += other.nek_rounds;
        self.empty_kernel_scenarios += other.empty_kernel_scenarios;
        self.p2otr_scenarios += other.p2otr_scenarios;
        self.largest_kernel_window = self.largest_kernel_window.max(other.largest_kernel_window);
        self.largest_uniform_window = self
            .largest_uniform_window
            .max(other.largest_uniform_window);
    }

    fn absorb(&mut self, s: &PredicateSummary) {
        self.monitored += 1;
        self.rounds += s.rounds;
        self.nek_rounds += s.nek_rounds;
        self.empty_kernel_scenarios += usize::from(s.first_empty_kernel.is_some());
        self.p2otr_scenarios += usize::from(s.first_p2otr.is_some());
        self.largest_kernel_window = self.largest_kernel_window.max(s.largest_kernel_window);
        self.largest_uniform_window = self.largest_uniform_window.max(s.largest_uniform_window);
    }
}

/// The aggregated outcome of a [`Sweep`](crate::Sweep) run.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Per-scenario verdicts, in grid order.
    pub verdicts: Vec<Verdict>,
    /// Number of scenarios executed.
    pub scenarios: usize,
    /// Scenarios in which every process decided.
    pub decided: usize,
    /// Scenarios that hit a consensus safety violation.
    pub violations: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Throughput.
    pub scenarios_per_sec: f64,
    /// Worker threads used.
    pub threads: usize,
    /// The work-stealing chunk policy the sweep ran under (recorded so a
    /// chunk-tuning run is self-describing).
    pub chunk: ChunkPolicy,
    /// Message-cost totals.
    pub totals: MessageTotals,
    /// Predicate-statistics totals over the monitored verdicts.
    pub predicate_totals: PredicateTotals,
    /// Merged telemetry digest over the recorded verdicts (`None` when the
    /// sweep ran with the recorder off).
    pub telemetry_totals: Option<TelemetrySummary>,
}

impl SweepReport {
    /// Folds verdicts into a report run under the given chunk policy.
    #[must_use]
    pub fn aggregate(
        verdicts: Vec<Verdict>,
        elapsed: Duration,
        threads: usize,
        chunk: ChunkPolicy,
    ) -> Self {
        let scenarios = verdicts.len();
        let decided = verdicts.iter().filter(|v| v.all_decided()).count();
        let violations = verdicts.iter().filter(|v| !v.is_safe()).count();
        let totals = MessageTotals {
            payload_allocs: verdicts.iter().map(|v| v.payload_allocs).sum(),
            payload_reuses: verdicts.iter().map(|v| v.payload_reuses).sum(),
            delivered: verdicts.iter().map(|v| v.delivered_messages).sum(),
            legacy_clones: verdicts.iter().map(|v| v.legacy_clones).sum(),
            rounds: verdicts.iter().map(|v| v.rounds_run).sum(),
        };
        let mut predicate_totals = PredicateTotals::default();
        for summary in verdicts.iter().filter_map(|v| v.predicates.as_ref()) {
            predicate_totals.absorb(summary);
        }
        let telemetry_totals = merge_telemetry(verdicts.iter().map(|v| v.telemetry.as_ref()));
        let wall_seconds = elapsed.as_secs_f64();
        SweepReport {
            scenarios,
            decided,
            violations,
            wall_seconds,
            scenarios_per_sec: if wall_seconds > 0.0 {
                scenarios as f64 / wall_seconds
            } else {
                f64::INFINITY
            },
            threads,
            chunk,
            totals,
            predicate_totals,
            telemetry_totals,
            verdicts,
        }
    }

    /// The verdicts that hit a safety violation.
    #[must_use]
    pub fn violating(&self) -> Vec<&Verdict> {
        self.verdicts.iter().filter(|v| !v.is_safe()).collect()
    }

    /// Per-(algorithm, adversary) decided/violation counts — the table the
    /// sweep exists to produce.
    #[must_use]
    pub fn by_cell(&self) -> BTreeMap<(String, String), (usize, usize, usize)> {
        let mut cells: BTreeMap<(String, String), (usize, usize, usize)> = BTreeMap::new();
        for v in &self.verdicts {
            let cell = cells
                .entry((v.algorithm.to_owned(), v.adversary.clone()))
                .or_default();
            cell.0 += 1;
            if v.all_decided() {
                cell.1 += 1;
            }
            if !v.is_safe() {
                cell.2 += 1;
            }
        }
        cells
    }

    /// The JSON document `crates/bench` writes as `BENCH_sweep.json`.
    ///
    /// `include_verdicts` controls whether the full per-scenario list is
    /// embedded (large) or only the aggregates and the per-cell table.
    #[must_use]
    pub fn to_json(&self, include_verdicts: bool) -> Json {
        // Per-cell recorder drop counts (telemetry-on sweeps only): ring
        // wrap is visible truncation and must surface next to the cell it
        // truncated.
        let mut dropped_by_cell: BTreeMap<(String, String), u64> = BTreeMap::new();
        for v in &self.verdicts {
            if let Some(t) = &v.telemetry {
                *dropped_by_cell
                    .entry((v.algorithm.to_owned(), v.adversary.clone()))
                    .or_default() += t.events_dropped;
            }
        }
        let cells: Vec<Json> = self
            .by_cell()
            .into_iter()
            .map(|((alg, adv), (total, decided, violations))| {
                let dropped = dropped_by_cell.get(&(alg.clone(), adv.clone())).copied();
                JsonFields::new()
                    .str("algorithm", alg)
                    .str("adversary", adv)
                    .uint("scenarios", total as u64)
                    .uint("decided", decided as u64)
                    .uint("violations", violations as u64)
                    .opt_uint("events_dropped", dropped)
                    .build()
            })
            .collect();
        let mut fields = vec![
            ("scenarios", Json::UInt(self.scenarios as u64)),
            ("decided", Json::UInt(self.decided as u64)),
            ("violations", Json::UInt(self.violations as u64)),
            ("wall_seconds", Json::Float(self.wall_seconds)),
            ("scenarios_per_sec", Json::Float(self.scenarios_per_sec)),
            ("threads", Json::UInt(self.threads as u64)),
            ("chunk", chunk_policy_json(&self.chunk)),
            (
                "messages",
                Json::obj([
                    ("payload_allocs", Json::UInt(self.totals.payload_allocs)),
                    ("payload_reuses", Json::UInt(self.totals.payload_reuses)),
                    ("fresh_allocs", Json::UInt(self.totals.fresh_allocs())),
                    ("delivered", Json::UInt(self.totals.delivered)),
                    ("legacy_clones", Json::UInt(self.totals.legacy_clones)),
                    ("rounds", Json::UInt(self.totals.rounds)),
                ]),
            ),
            ("cells", Json::Arr(cells)),
        ];
        if self.predicate_totals.monitored > 0 {
            fields.push(("predicates", predicate_totals_json(&self.predicate_totals)));
        }
        if let Some(t) = &self.telemetry_totals {
            fields.push(("telemetry", telemetry_summary_json(t)));
        }
        if include_verdicts {
            fields.push((
                "verdicts",
                Json::Arr(self.verdicts.iter().map(verdict_json).collect()),
            ));
        }
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }
}

/// Merges per-verdict telemetry digests; `None` when no verdict carried
/// one (recorder-off sweeps add nothing to any report).
fn merge_telemetry<'a>(
    summaries: impl Iterator<Item = Option<&'a TelemetrySummary>>,
) -> Option<TelemetrySummary> {
    let mut merged: Option<TelemetrySummary> = None;
    for s in summaries.flatten() {
        merged
            .get_or_insert_with(TelemetrySummary::default)
            .merge(s);
    }
    merged
}

/// The JSON form of one run's [`TelemetrySummary`]: event totals by kind
/// plus the per-phase time breakdown. Span ticks are raw (`rdtsc` cycles
/// or nanoseconds, platform-dependent), so the `share` fields — fractions
/// of the run's total timed ticks — are the unit-agnostic numbers to read.
#[must_use]
pub fn telemetry_summary_json(s: &TelemetrySummary) -> Json {
    let events = Json::Obj(
        EventKind::names()
            .iter()
            .zip(&s.kind_counts)
            .map(|(name, count)| ((*name).to_owned(), Json::UInt(*count)))
            .collect(),
    );
    let phases = Json::Obj(
        Phase::all()
            .iter()
            .map(|p| {
                (
                    p.name().to_owned(),
                    JsonFields::new()
                        .uint("ticks", s.phase_ticks[*p as usize])
                        .uint("spans", s.phase_spans[*p as usize])
                        .float("share", s.phase_share(*p))
                        .build(),
                )
            })
            .collect(),
    );
    JsonFields::new()
        .uint("events_recorded", s.events_recorded)
        .uint("events_dropped", s.events_dropped)
        .field("events", events)
        .field("phases", phases)
        .build()
}

/// The JSON form of one flight-recorder [`Event`] (a forensic-artifact
/// row): `process` is `null` for whole-system events, `detail` carries the
/// kind's scalar (count, queue depth, witness round) when it has one.
#[must_use]
pub fn telemetry_event_json(e: &Event) -> Json {
    JsonFields::new()
        .uint("round", e.round)
        .float("time", e.time)
        .opt_uint(
            "process",
            (e.process != Event::ALL).then_some(u64::from(e.process)),
        )
        .str("kind", e.kind.name())
        .opt_uint("detail", e.kind.detail())
        .build()
}

/// The exact command that reruns one scenario from the committed grids —
/// what forensic artifacts embed as their `repro` line.
#[must_use]
pub fn repro_command(scenario_id: &str) -> String {
    format!("cargo run --release -p bench --bin sweep -- --scenario {scenario_id}")
}

/// A self-contained forensic artifact: the violated scenario, its seed,
/// the exact repro command, the run's telemetry digest and the drained
/// flight-recorder ring (the last K events leading up to the violation).
#[must_use]
pub fn forensic_artifact_json(
    scenario_id: &str,
    seed: u64,
    violation: &str,
    telemetry: Option<&TelemetrySummary>,
    events: &[Event],
) -> Json {
    let mut fields = JsonFields::new()
        .str("scenario", scenario_id)
        .uint("seed", seed)
        .str("violation", violation)
        .str("repro", repro_command(scenario_id));
    if let Some(t) = telemetry {
        fields = fields.field("telemetry", telemetry_summary_json(t));
    }
    fields
        .field(
            "events",
            Json::Arr(events.iter().map(telemetry_event_json).collect()),
        )
        .build()
}

/// The JSON form of a sim-layer sweep ([`SimReport`](crate::SimReport)) —
/// the `sim_layer` section of `BENCH_sweep.json`.
///
/// `include_verdicts` controls whether the full per-scenario list is
/// embedded or only the aggregates.
#[must_use]
pub fn sim_report_json(report: &crate::sim::SimReport, include_verdicts: bool) -> Json {
    let scheduler = report
        .verdicts
        .first()
        .map_or(ho_sim::SchedulerKind::default(), |v| v.scheduler);
    let mut fields = vec![
        ("scheduler", Json::Str(scheduler.name().to_owned())),
        ("scenarios", Json::UInt(report.scenarios as u64)),
        ("achieved", Json::UInt(report.achieved as u64)),
        ("violations", Json::UInt(report.violations as u64)),
        ("wall_seconds", Json::Float(report.wall_seconds)),
        ("scenarios_per_sec", Json::Float(report.scenarios_per_sec)),
        ("events_dispatched", Json::UInt(report.events_dispatched)),
        ("peak_queue_depth", Json::UInt(report.peak_queue_depth)),
        ("events_per_sec", Json::Float(report.events_per_sec)),
        ("threads", Json::UInt(report.threads as u64)),
        ("chunk", chunk_policy_json(&report.chunk)),
        (
            "delivery",
            Json::obj([
                ("transmissions", Json::UInt(report.transmissions)),
                ("delivered", Json::UInt(report.totals.delivered)),
                ("dropped", Json::UInt(report.dropped)),
                ("crashes", Json::UInt(report.crashes)),
            ]),
        ),
        (
            "messages",
            Json::obj([
                ("payload_allocs", Json::UInt(report.totals.payload_allocs)),
                ("payload_reuses", Json::UInt(report.totals.payload_reuses)),
                ("fresh_allocs", Json::UInt(report.totals.fresh_allocs())),
                ("rounds", Json::UInt(report.totals.rounds)),
            ]),
        ),
    ];
    if let Some(t) = merge_telemetry(report.verdicts.iter().map(|v| v.telemetry.as_ref())) {
        fields.push(("telemetry", telemetry_summary_json(&t)));
    }
    if include_verdicts {
        fields.push((
            "verdicts",
            Json::Arr(report.verdicts.iter().map(sim_verdict_json).collect()),
        ));
    }
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// The JSON form of one sim-layer verdict.
#[must_use]
pub fn sim_verdict_json(v: &crate::sim::SimVerdict) -> Json {
    let mut fields = JsonFields::new()
        .str("id", v.id())
        .str("scheduler", v.scheduler.name())
        .bool("achieved", v.achieved)
        .bool("within_bound", v.within_bound)
        .field(
            "empirical_length",
            v.empirical_length.map_or(Json::Null, Json::Float),
        )
        .float("bound", v.bound)
        .opt_uint("rho0", v.rho0)
        .opt_str("violation", v.violation.clone())
        .uint("max_round", v.max_round)
        .uint("transmissions", v.transmissions)
        .uint("delivered", v.messages.delivered)
        .uint("payload_allocs", v.messages.payload_allocs)
        .uint("payload_reuses", v.messages.payload_reuses)
        .uint("wall_nanos", v.wall_nanos);
    if let Some(t) = &v.telemetry {
        fields = fields.field("telemetry", telemetry_summary_json(t));
    }
    fields.build()
}

/// The JSON form of the work-stealing [`ChunkPolicy`] a sweep ran under.
#[must_use]
pub fn chunk_policy_json(policy: &ChunkPolicy) -> Json {
    JsonFields::new()
        .uint("target_claims", policy.target_claims as u64)
        .uint("max_chunk", policy.max_chunk as u64)
        .build()
}

/// The JSON form of one model-layer verdict.
#[must_use]
pub fn verdict_json(v: &Verdict) -> Json {
    let mut fields = JsonFields::new()
        .str("id", v.id())
        .opt_uint("decided_round", v.decided_round)
        .opt_uint("decision", v.decision_value)
        .opt_str("violation", v.violation.clone())
        .uint("rounds", v.rounds_run)
        .uint("payload_allocs", v.payload_allocs)
        .uint("payload_reuses", v.payload_reuses)
        .uint("delivered", v.delivered_messages)
        .uint("legacy_clones", v.legacy_clones);
    if let Some(p) = &v.predicates {
        fields = fields.field("predicates", predicate_summary_json(p));
    }
    if let Some(t) = &v.telemetry {
        fields = fields.field("telemetry", telemetry_summary_json(t));
    }
    fields.build()
}

/// The JSON form of a per-scenario [`PredicateSummary`].
#[must_use]
pub fn predicate_summary_json(s: &PredicateSummary) -> Json {
    JsonFields::new()
        .uint("rounds", s.rounds)
        .uint("nek_rounds", s.nek_rounds)
        .opt_uint("first_empty_kernel", s.first_empty_kernel)
        .uint("largest_kernel_window", s.largest_kernel_window)
        .uint("uniform_rounds", s.uniform_rounds)
        .uint("largest_uniform_window", s.largest_uniform_window)
        .opt_uint("first_p2otr", s.first_p2otr)
        .build()
}

/// The JSON form of grid-wide [`PredicateTotals`] — shared with
/// `crates/bench`, which extends it with throughput fields, so the two
/// documents cannot drift.
#[must_use]
pub fn predicate_totals_json(t: &PredicateTotals) -> Json {
    JsonFields::new()
        .uint("monitored_scenarios", t.monitored as u64)
        .uint("rounds", t.rounds)
        .uint("nek_rounds", t.nek_rounds)
        .uint("empty_kernel_scenarios", t.empty_kernel_scenarios as u64)
        .uint("p2otr_scenarios", t.p2otr_scenarios as u64)
        .uint("largest_kernel_window", t.largest_kernel_window)
        .uint("largest_uniform_window", t.largest_uniform_window)
        .build()
}

/// The JSON form of an rsm-layer sweep ([`RsmReport`](crate::RsmReport)) —
/// the `rsm_layer` section of `BENCH_sweep.json`.
///
/// `include_verdicts` controls whether the full per-scenario list is
/// embedded or only the aggregates and the per-cell table.
#[must_use]
pub fn rsm_report_json(report: &crate::rsm::RsmReport, include_verdicts: bool) -> Json {
    let cells: Vec<Json> = report
        .by_cell()
        .into_iter()
        .map(
            |((algorithm, adversary, depth, shards, workload, lease), cell)| {
                JsonFields::new()
                    .str("algorithm", algorithm)
                    .str("adversary", adversary)
                    .uint("depth", depth as u64)
                    .uint("shards", shards as u64)
                    .str("workload", workload)
                    .bool("lease", lease)
                    .uint("scenarios", cell.scenarios as u64)
                    .uint("violations", cell.violations as u64)
                    .uint("slots", cell.slots)
                    .uint("commands", cell.commands)
                    .uint("generated_commands", cell.generated)
                    .uint("requeued_commands", cell.requeued)
                    .uint("noop_slots", cell.noop_slots)
                    .uint("lease_takeovers", cell.lease_takeovers)
                    .uint("deferred_commands", cell.deferred_commands)
                    .opt_float("requeue_ratio", cell.requeue_ratio())
                    .float("rounds_per_slot", cell.rounds_per_slot())
                    .float("commands_per_sec", cell.commands_per_sec())
                    .uint("worst_p99_latency_rounds", cell.worst_p99_latency)
                    .uint("backfill_entries", cell.backfill_entries)
                    .uint("divergent_rounds", cell.divergent_rounds)
                    .uint("dark_rounds", cell.dark_rounds)
                    .uint("worst_catch_up_rounds", cell.worst_catch_up)
                    .uint("events_dropped", cell.events_dropped)
                    .build()
            },
        )
        .collect();
    let mut fields = JsonFields::new()
        .uint("scenarios", report.scenarios as u64)
        .uint("violations", report.violations as u64)
        .float("wall_seconds", report.wall_seconds)
        .float("scenarios_per_sec", report.scenarios_per_sec)
        .float("commands_per_sec", report.commands_per_sec)
        .uint("threads", report.threads as u64)
        .field("chunk", chunk_policy_json(&report.chunk))
        .field(
            "service",
            JsonFields::new()
                .uint("rounds", report.totals.rounds)
                .uint("slots", report.totals.slots)
                .uint("commands", report.totals.commands)
                .uint("generated_commands", report.totals.generated)
                .uint("requeued_commands", report.totals.requeued)
                .opt_float(
                    "requeue_ratio",
                    (report.totals.commands != 0)
                        .then(|| report.totals.requeued as f64 / report.totals.commands as f64),
                )
                .float("rounds_per_slot", report.rounds_per_slot())
                .uint("worst_p99_latency_rounds", report.totals.worst_p99_latency)
                .build(),
        )
        .field("cells", Json::Arr(cells));
    if let Some(t) = merge_telemetry(report.verdicts.iter().map(|v| v.telemetry.as_ref())) {
        fields = fields.field("telemetry", telemetry_summary_json(&t));
    }
    if include_verdicts {
        fields = fields.field(
            "verdicts",
            Json::Arr(report.verdicts.iter().map(rsm_verdict_json).collect()),
        );
    }
    fields.build()
}

/// The JSON form of one rsm-layer verdict.
#[must_use]
pub fn rsm_verdict_json(v: &crate::rsm::RsmVerdict) -> Json {
    let mut fields = JsonFields::new()
        .str("id", v.id())
        .opt_str("violation", v.violation.clone())
        .uint("rounds", v.rounds_run)
        .uint("shards", v.shards as u64)
        .bool("lease", v.lease)
        .uint("slots", v.slots)
        .uint("min_slots", v.min_slots)
        .uint("noop_slots", v.noop_slots)
        .uint("commands", v.commands)
        .uint("generated_commands", v.generated_commands)
        .uint("requeued_commands", v.requeued_commands)
        .uint("lease_takeovers", v.lease_takeovers)
        .uint("deferred_commands", v.deferred_commands)
        .uint("backfill_entries", v.backfill_entries)
        .uint("divergent_rounds", v.divergent_rounds)
        .uint("dark_rounds", v.dark_rounds)
        .opt_uint("catch_up_rounds", v.catch_up_rounds)
        .opt_float("requeue_ratio", v.requeue_ratio())
        .float("rounds_per_slot", v.rounds_per_slot())
        .float("commands_per_sec", v.commands_per_sec())
        .float("commands_per_round", v.commands_per_round())
        .uint("latency_samples", v.latency_samples)
        .opt_uint("latency_p50", v.latency_p50)
        .opt_uint("latency_p90", v.latency_p90)
        .opt_uint("latency_p99", v.latency_p99)
        .opt_uint("latency_max", v.latency_max)
        .uint("payload_allocs", v.payload_allocs)
        .uint("payload_reuses", v.payload_reuses)
        .uint("delivered", v.delivered_messages)
        .uint("wall_nanos", v.wall_nanos);
    if let Some(t) = &v.telemetry {
        fields = fields.field("telemetry", telemetry_summary_json(t));
    }
    fields.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AdversarySpec, AlgorithmSpec, Scenario};

    fn verdicts(k: usize) -> Vec<Verdict> {
        (0..k)
            .map(|i| {
                Scenario {
                    algorithm: AlgorithmSpec::OneThirdRule,
                    adversary: AdversarySpec::FullDelivery,
                    n: 4,
                    seed: i as u64,
                    max_rounds: 20,
                    cooldown_rounds: 0,
                    monitor_predicates: false,
                    telemetry: false,
                }
                .run()
            })
            .collect()
    }

    #[test]
    fn json_shape() {
        let report = SweepReport::aggregate(
            verdicts(3),
            Duration::from_millis(5),
            2,
            ChunkPolicy::default(),
        );
        let json = report.to_json(true).pretty();
        assert!(json.contains("\"scenarios\": 3"));
        assert!(json.contains("\"cells\""));
        assert!(json.contains("\"verdicts\""));
        assert!(json.contains("one_third_rule/full_delivery"));
        let without = report.to_json(false).pretty();
        assert!(!without.contains("\"verdicts\""));
    }

    #[test]
    fn by_cell_counts() {
        let report = SweepReport::aggregate(
            verdicts(4),
            Duration::from_millis(1),
            1,
            ChunkPolicy::default(),
        );
        let cells = report.by_cell();
        let cell = cells
            .get(&("one_third_rule".to_owned(), "full_delivery".to_owned()))
            .unwrap();
        assert_eq!(*cell, (4, 4, 0));
    }
}
