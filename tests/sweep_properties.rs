//! Property-style sweep tests: consensus safety at scale.
//!
//! Each property drives the `Sweep` API over ≥ 100 seeds per cell and
//! asserts the consensus safety specification — agreement, validity
//! (integrity) and decision irrevocability — which the executor's
//! `ConsensusChecker` verifies online after every round. A scenario whose
//! verdict carries no violation passed all three for its entire run.
//!
//! Scoping note: OneThirdRule and LastVoting are safe under *any* HO
//! assignment, so they are swept under the full fault zoo (random loss,
//! partitions, crash–recovery). UniformVoting's safety predicate `P_nek`
//! requires a non-empty kernel every round — a single down process empties
//! the kernel — so its zero-violation sweep runs under kernel-preserving
//! environments, and a separate property asserts the harness *detects*
//! its agreement violations outside `P_nek` (the paper's reason for
//! stating the predicate at all).

use heardof::harness::{AdversarySpec, AlgorithmSpec, Sweep, SweepReport};

const SEEDS: u64 = 100;

fn assert_all_safe(report: &SweepReport, label: &str) {
    let violating = report.violating();
    assert!(
        violating.is_empty(),
        "{label}: {} of {} scenarios violated safety; first: {} -> {}",
        violating.len(),
        report.scenarios,
        violating[0].id(),
        violating[0].violation.as_deref().unwrap_or("?"),
    );
}

/// OTR and LastVoting: agreement, validity and irrevocability hold under
/// every adversary in the zoo, for every seed — no predicate needed.
#[test]
fn otr_and_last_voting_safe_under_full_fault_zoo() {
    let report = Sweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
        .adversaries([
            AdversarySpec::RandomLoss { loss: 0.35 },
            AdversarySpec::Partition { blocks: 2 },
            AdversarySpec::CrashRecovery,
        ])
        .sizes([4, 7])
        .seeds(0..SEEDS)
        .max_rounds(80)
        .run();
    assert_eq!(report.scenarios, 2 * 3 * 2 * SEEDS as usize);
    assert_all_safe(&report, "OTR/LastVoting under fault zoo");
}

/// UniformVoting within its safety predicate: kernel-preserving loss (a
/// rotating pivot heard by everyone) never produces a violation.
#[test]
fn uniform_voting_safe_within_pnek() {
    let report = Sweep::new()
        .algorithms([AlgorithmSpec::UniformVoting])
        .adversaries([
            AdversarySpec::FullDelivery,
            AdversarySpec::KernelOnly { loss: 0.8 },
        ])
        .sizes([4, 7])
        .seeds(0..SEEDS)
        .max_rounds(80)
        .run();
    assert_eq!(report.scenarios, 2 * 2 * SEEDS as usize);
    assert_all_safe(&report, "UniformVoting within P_nek");
}

/// UniformVoting outside `P_nek`: the sweep must *catch* agreement
/// violations (disjoint groups — in space under partitions/loss, in time
/// under staggered outages — confirm different votes). This is the
/// checker's sensitivity test: a harness that reported zero here would be
/// blind.
#[test]
fn uniform_voting_violations_outside_pnek_are_detected() {
    let report = Sweep::new()
        .algorithms([AlgorithmSpec::UniformVoting])
        .adversaries([
            AdversarySpec::RandomLoss { loss: 0.4 },
            AdversarySpec::Partition { blocks: 2 },
            AdversarySpec::CrashRecovery,
        ])
        .sizes([4, 7])
        .seeds(0..SEEDS)
        .max_rounds(80)
        .run();
    assert!(
        report.violations > 0,
        "expected detected agreement violations outside P_nek"
    );
    // Every reported violation is an agreement violation (never integrity:
    // decided values are always proposals; never a revocation: decisions
    // are sticky in all three algorithms).
    for v in report.violating() {
        let msg = v.violation.as_deref().unwrap();
        assert!(msg.contains("agreement violated"), "{}: {msg}", v.id());
    }
}

/// Liveness where the predicates hold: under eventually-good communication
/// every OTR and LastVoting scenario decides, and decisions are valid
/// proposals. (UniformVoting is excluded: the chaos prefix has empty
/// kernels, where UV is not even safe — see the detection property above.)
#[test]
fn eventually_good_decides_with_valid_values() {
    let adversary = AdversarySpec::EventuallyGood {
        bad_rounds: 5,
        loss: 0.6,
    };
    let report = Sweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
        .adversaries([adversary])
        .sizes([4])
        .seeds(0..SEEDS)
        .max_rounds(120)
        .run();
    assert_all_safe(&report, "eventually-good");
    for v in &report.verdicts {
        assert!(v.all_decided(), "{} never decided", v.id());
        // Validity, re-checked end-to-end from the verdict itself.
        let scenario = heardof::harness::Scenario {
            algorithm: AlgorithmSpec::ALL
                .into_iter()
                .find(|a| a.name() == v.algorithm)
                .unwrap(),
            adversary,
            n: v.n,
            seed: v.seed,
            max_rounds: 120,
            cooldown_rounds: 0,
            monitor_predicates: false,
            telemetry: false,
        };
        assert!(
            scenario
                .initial_values()
                .contains(&v.decision_value.unwrap()),
            "{}: decided a non-proposal",
            v.id()
        );
    }
}

/// Decision irrevocability, exercised beyond the decision round: the
/// cooldown keeps every scenario running for 100 rounds *after* all
/// processes decide — under continued chaos, not just clean delivery —
/// with the online checker observing each round. A decision revoked or
/// changed in the cooldown becomes a violation in the verdict.
#[test]
fn decisions_are_irrevocable_over_long_runs() {
    // All three algorithms survive a clean-delivery cooldown; OTR and
    // LastVoting additionally survive one that begins in chaos (UV stays
    // out of the chaotic cell — empty kernels are outside its safety
    // predicate, see above).
    let sweeps = [
        Sweep::new()
            .algorithms(AlgorithmSpec::ALL)
            .adversaries([AdversarySpec::FullDelivery]),
        Sweep::new()
            .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
            .adversaries([AdversarySpec::EventuallyGood {
                bad_rounds: 3,
                loss: 0.5,
            }]),
    ];
    for sweep in sweeps {
        let report = sweep
            .sizes([4, 7])
            .seeds(0..SEEDS)
            .max_rounds(500)
            .cooldown_rounds(100)
            .run();
        assert_all_safe(&report, "post-decision cooldown runs");
        assert_eq!(report.decided, report.scenarios);
        // The cooldown actually ran: every verdict executed well past
        // its decision round.
        for v in &report.verdicts {
            assert!(
                v.rounds_run >= v.decided_round.unwrap() + 100,
                "{}: no cooldown executed",
                v.id()
            );
        }
    }
}

/// The SendPlan acceptance criterion, measured across the whole sweep:
/// broadcast algorithms allocate O(n) payloads per round where the legacy
/// per-destination scheme cloned O(n²).
#[test]
fn sweep_confirms_o_n_payload_allocations() {
    let n = 7;
    let report = Sweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::UniformVoting])
        .adversaries([AdversarySpec::FullDelivery])
        .sizes([n])
        .seeds(0..SEEDS)
        .max_rounds(50)
        .run();
    for v in &report.verdicts {
        // Pure-broadcast algorithms: exactly n payloads per round.
        assert_eq!(v.payload_allocs, n as u64 * v.rounds_run, "{}", v.id());
        // Full delivery: the legacy scheme would have cloned n² per round.
        assert_eq!(v.legacy_clones, (n * n) as u64 * v.rounds_run, "{}", v.id());
    }
}
