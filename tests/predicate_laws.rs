//! Property-based laws of the communication predicates.
//!
//! Checks the implications the paper states after Table 1 and in §4.2 —
//! `P_su ⇒ P_k`, `P2_otr(Π0) ⇒ P_otr^restr` and
//! `P1/1_otr(Π0) ⇒ P_otr^restr` for `|Π0| > 2n/3` — plus structural
//! properties of kernels and witnesses, over arbitrary traces.

use heardof::core::predicate::{
    find_kernel_runs, find_otr_witness, find_p11otr_witness, find_p2otr_witness,
    find_restricted_otr_witness, find_space_uniform_runs, Kernel, P11Otr, P2Otr, Potr,
    PotrRestricted, Predicate, SpaceUniform,
};
use heardof::core::process::ProcessSet;
use heardof::core::round::Round;
use heardof::core::trace::Trace;
use proptest::prelude::*;

fn arb_trace(n: usize, rounds: usize) -> impl Strategy<Value = Trace> {
    let mask = (1u128 << n) - 1;
    proptest::collection::vec(proptest::collection::vec(0u128..=mask, n), 1..=rounds).prop_map(
        move |rows| {
            let mut t = Trace::new(n);
            for row in rows {
                t.push_round(
                    row.into_iter()
                        .map(|bits| {
                            ProcessSet::from_indices((0..n).filter(|i| bits & (1 << i) != 0))
                        })
                        .collect(),
                );
            }
            t
        },
    )
}

fn arb_scope(n: usize) -> impl Strategy<Value = ProcessSet> {
    let mask = (1u128 << n) - 1;
    (1u128..=mask)
        .prop_map(move |bits| ProcessSet::from_indices((0..n).filter(|i| bits & (1 << i) != 0)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `P_su(Π0, r, r) ⇒ P_k(Π0, r, r)` for every round of every trace.
    #[test]
    fn space_uniform_implies_kernel(t in arb_trace(5, 8), scope in arb_scope(5)) {
        for r in 1..=t.rounds() {
            let su = SpaceUniform::new(scope, Round(r), Round(r)).holds(&t);
            let k = Kernel::new(scope, Round(r), Round(r)).holds(&t);
            prop_assert!(!su || k, "round {r}: P_su without P_k");
        }
    }

    /// `P2_otr(Π0) ⇒ P1/1_otr(Π0)`: adjacent rounds are a special case of
    /// non-adjacent ones.
    #[test]
    fn p2otr_implies_p11otr(t in arb_trace(5, 8), scope in arb_scope(5)) {
        if P2Otr::new(scope).holds(&t) {
            prop_assert!(P11Otr::new(scope).holds(&t));
        }
    }

    /// `(∃Π0, |Π0| > 2n/3 : P1/1_otr(Π0)) ⇒ P_otr^restr` — the implication
    /// stated in §4.2.
    #[test]
    fn p11otr_implies_restricted_otr(t in arb_trace(4, 8), scope in arb_scope(4)) {
        let n = 4;
        if 3 * scope.len() > 2 * n && P11Otr::new(scope).holds(&t) {
            prop_assert!(PotrRestricted.holds(&t));
        }
    }

    /// `P_otr ⇒ P_otr^restr`: the unrestricted predicate is strictly
    /// stronger.
    #[test]
    fn potr_implies_restricted(t in arb_trace(4, 8)) {
        if Potr.holds(&t) {
            prop_assert!(PotrRestricted.holds(&t));
        }
    }

    /// Witness functions agree with their predicates.
    #[test]
    fn witnesses_match_predicates(t in arb_trace(4, 8), scope in arb_scope(4)) {
        prop_assert_eq!(Potr.holds(&t), find_otr_witness(&t).is_some());
        prop_assert_eq!(
            PotrRestricted.holds(&t),
            find_restricted_otr_witness(&t).is_some()
        );
        prop_assert_eq!(
            P2Otr::new(scope).holds(&t),
            find_p2otr_witness(&t, scope).is_some()
        );
        prop_assert_eq!(
            P11Otr::new(scope).holds(&t),
            find_p11otr_witness(&t, scope).is_some()
        );
    }

    /// Every round inside a reported space-uniform run really satisfies
    /// `P_su(scope, r, r)`, and runs are maximal (adjacent rounds fail).
    #[test]
    fn uniform_runs_are_sound_and_maximal(t in arb_trace(4, 10), scope in arb_scope(4)) {
        let runs = find_space_uniform_runs(&t, scope);
        for run in &runs {
            for r in run.from.get()..=run.to.get() {
                prop_assert!(SpaceUniform::new(scope, Round(r), Round(r)).holds(&t));
            }
            if run.from.get() > 1 {
                let before = run.from.get() - 1;
                prop_assert!(!SpaceUniform::new(scope, Round(before), Round(before)).holds(&t));
            }
            if run.to.get() < t.rounds() {
                let after = run.to.get() + 1;
                prop_assert!(!SpaceUniform::new(scope, Round(after), Round(after)).holds(&t));
            }
        }
    }

    /// Kernel runs contain the uniform runs (since `P_su ⇒ P_k`).
    #[test]
    fn kernel_runs_cover_uniform_runs(t in arb_trace(4, 10), scope in arb_scope(4)) {
        let uni = find_space_uniform_runs(&t, scope);
        let ker = find_kernel_runs(&t, scope);
        for u in &uni {
            prop_assert!(
                ker.iter().any(|k| k.from <= u.from && u.to <= k.to),
                "uniform run {:?} not covered by kernel runs {:?}", u, ker
            );
        }
    }

    /// The kernel of a round is contained in every member's HO set and is
    /// antitone in the scope: intersecting over more processes can only
    /// shrink it.
    #[test]
    fn kernel_structure(t in arb_trace(5, 6), scope in arb_scope(5)) {
        for r in 1..=t.rounds() {
            let k = t.kernel(Round(r), scope);
            for p in scope.iter() {
                prop_assert!(k.is_subset(t.ho(p, Round(r))));
            }
            let k_full = t.kernel(Round(r), ProcessSet::full(5));
            prop_assert!(
                k_full.is_subset(k),
                "kernel over Π must be ⊆ kernel over any scope"
            );
        }
    }
}
