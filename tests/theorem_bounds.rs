//! Integration tests: the system-level measurements respect the paper's
//! worst-case bounds across parameter settings.
//!
//! Observation slack: the measurement harness records a round's `HO(p, r)`
//! when `T_p^r` executes, which trails the theorems' accounting by one
//! message exchange — `δ + φ` for Algorithm 2, and one INIT exchange for
//! Algorithm 3. In Algorithm 3, post-timeout steps alternate between
//! receives and INIT re-announcements, so collecting the quorum can take up
//! to `2n` steps: slack `δ + (2n+2)φ`.

use heardof::core::process::ProcessSet;
use heardof::predicates::bounds::BoundParams;
use heardof::predicates::measure::{
    measure_alg2_space_uniform, measure_alg3_kernel, measure_full_stack, Scenario,
};

fn alg2_slack(p: &BoundParams) -> f64 {
    p.delta + p.phi + 1.0
}

fn alg3_slack(p: &BoundParams) -> f64 {
    p.delta + (2.0 * p.n as f64 + 2.0) * p.phi + 1.0
}

#[test]
fn theorem3_holds_across_parameters() {
    for (n, phi, delta) in [(4, 1.0, 2.0), (7, 1.0, 4.0), (4, 2.0, 1.0)] {
        let params = BoundParams::new(n, phi, delta);
        for x in [1u64, 2, 3] {
            for seed in 0..3 {
                let m = measure_alg2_space_uniform(
                    params,
                    ProcessSet::full(n),
                    x,
                    Scenario::rough(45.0 + 10.0 * seed as f64),
                    seed,
                );
                assert!(
                    m.within_bound(alg2_slack(&params)),
                    "n={n} φ={phi} δ={delta} x={x} seed={seed}: {m:?}"
                );
            }
        }
    }
}

#[test]
fn theorem5_holds_across_parameters() {
    for (n, phi, delta) in [(4, 1.0, 2.0), (7, 1.0, 4.0), (10, 1.5, 3.0)] {
        let params = BoundParams::new(n, phi, delta);
        for x in [1u64, 2, 4] {
            let m =
                measure_alg2_space_uniform(params, ProcessSet::full(n), x, Scenario::Initial, 9);
            assert!(
                m.within_bound(alg2_slack(&params)),
                "n={n} φ={phi} δ={delta} x={x}: {m:?}"
            );
        }
    }
}

#[test]
fn theorem5_scales_linearly_in_x() {
    // The measured initial-good-period length grows linearly with x, with
    // slope ≈ one round length — the shape Theorem 5 predicts.
    let params = BoundParams::new(4, 1.0, 2.0);
    let mut lens = Vec::new();
    for x in [1u64, 2, 3, 4] {
        let m = measure_alg2_space_uniform(params, ProcessSet::full(4), x, Scenario::Initial, 5);
        lens.push(m.empirical_length().expect("achieved"));
    }
    let d1 = lens[1] - lens[0];
    let d2 = lens[2] - lens[1];
    let d3 = lens[3] - lens[2];
    assert!(
        (d1 - d2).abs() < 2.0 && (d2 - d3).abs() < 2.0,
        "slopes {d1} {d2} {d3}"
    );
    // The per-round slope is at most the Theorem 5 per-round cost.
    assert!(d1 <= params.theorem5(1) + 1e-9);
}

#[test]
fn theorem6_holds_across_parameters() {
    for (n, f) in [(4usize, 1usize), (5, 2)] {
        let params = BoundParams::new(n, 1.0, 2.0);
        for x in [1u64, 2] {
            for seed in 0..2 {
                let m = measure_alg3_kernel(
                    params,
                    f,
                    x,
                    Scenario::rough(45.0 + 9.0 * seed as f64),
                    seed,
                );
                assert!(
                    m.within_bound(alg3_slack(&params)),
                    "n={n} f={f} x={x} seed={seed}: {m:?}"
                );
            }
        }
    }
}

#[test]
fn theorem7_holds_across_parameters() {
    for (n, f) in [(4usize, 1usize), (5, 2), (9, 4)] {
        let params = BoundParams::new(n, 1.0, 2.0);
        let m = measure_alg3_kernel(params, f, 2, Scenario::Initial, 3);
        assert!(m.within_bound(alg3_slack(&params)), "n={n} f={f}: {m:?}");
    }
}

#[test]
fn nice_vs_not_nice_ratio_shape() {
    // Theorem 3 vs Theorem 5 at x = 2: the paper reports a factor ≈ 3/2
    // between "not nice" and "nice" runs. The bound ratio must be in that
    // ballpark and the measured ratio must not exceed the bound ratio by
    // more than the observation slack allows.
    let params = BoundParams::new(4, 1.0, 2.0);
    let ratio = params.nice_ratio(2);
    assert!(ratio > 1.3 && ratio < 1.8, "bound ratio {ratio}");

    let init = measure_alg2_space_uniform(params, ProcessSet::full(4), 2, Scenario::Initial, 2);
    let later =
        measure_alg2_space_uniform(params, ProcessSet::full(4), 2, Scenario::rough(50.0), 2);
    let m_init = init.empirical_length().unwrap();
    let m_later = later.empirical_length().unwrap();
    assert!(
        m_later >= m_init,
        "a mid-run good period cannot be cheaper than an initial one"
    );
}

#[test]
fn full_stack_within_bound_for_f1() {
    let params = BoundParams::new(5, 1.0, 2.0);
    let f = 1;
    for seed in 0..2 {
        let out = measure_full_stack(params, f, Scenario::rough(40.0 + 12.0 * seed as f64), seed);
        let m = &out.measurement;
        assert!(m.achieved_at.is_some(), "seed {seed}: {out:?}");
        // Decision trails P2_otr by up to one macro-round (see
        // `ho-predicates`'s measure module).
        let slack = (f as f64 + 1.0) * params.alg3_round_cost() + alg3_slack(&params);
        assert!(m.within_bound(slack), "seed {seed}: {m:?}");
        // Agreement + integrity.
        let vals: Vec<u64> = out.decisions.iter().flatten().copied().collect();
        assert!(vals.windows(2).all(|w| w[0] == w[1]));
        assert!(vals.iter().all(|v| *v < params.n as u64));
    }
}

#[test]
fn full_stack_bound_grows_linearly_in_f() {
    let params = BoundParams::new(9, 1.0, 2.0);
    let b1 = params.full_stack(1);
    let b2 = params.full_stack(2);
    let b3 = params.full_stack(3);
    assert!((b2 - b1 - 2.0 * params.alg3_round_cost()).abs() < 1e-9);
    assert!((b3 - b2 - 2.0 * params.alg3_round_cost()).abs() < 1e-9);
}
