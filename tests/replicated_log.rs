//! Property tests for `RepeatedConsensus`: the replicated-log invariants
//! hold under arbitrary transmission-fault patterns.
//!
//! * **Prefix consistency** (no forks): any two replicas' decided logs
//!   agree on their common prefix — the atomic-broadcast safety property.
//! * **Slot integrity**: slot `k`'s decided value is one of the slot-`k`
//!   proposals.
//! * **Monotonicity**: a replica's log only grows.

use heardof::core::adversary::{FullDelivery, Scripted};
use heardof::core::algorithms::OneThirdRule;
use heardof::core::executor::RoundExecutor;
use heardof::core::process::{ProcessId, ProcessSet};
use heardof::core::sequence::RepeatedConsensus;
use proptest::prelude::*;

type Log = Vec<u64>;

fn proposals(p: ProcessId, slot: u64) -> u64 {
    100 * slot + p.index() as u64
}

fn make(n: usize) -> RepeatedConsensus<OneThirdRule, fn(ProcessId, u64) -> u64> {
    RepeatedConsensus::new(OneThirdRule::new(n), proposals as fn(ProcessId, u64) -> u64)
}

fn arb_script(n: usize, rounds: usize) -> impl Strategy<Value = Vec<Vec<ProcessSet>>> {
    let mask = (1u128 << n) - 1;
    proptest::collection::vec(proptest::collection::vec(0u128..=mask, n), rounds).prop_map(
        move |rows| {
            rows.into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|bits| {
                            ProcessSet::from_indices((0..n).filter(|i| bits & (1 << i) != 0))
                        })
                        .collect()
                })
                .collect()
        },
    )
}

fn prefix_consistent(logs: &[Log]) -> bool {
    logs.iter().all(|a| {
        logs.iter().all(|b| {
            let c = a.len().min(b.len());
            a[..c] == b[..c]
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No fault pattern can fork the log.
    #[test]
    fn logs_never_fork(script in arb_script(4, 24)) {
        let n = 4;
        let rounds = script.len() as u64;
        let mut exec = RoundExecutor::new(make(n), (0..n as u64).collect());
        let mut adv = Scripted::new(script);
        exec.run(&mut adv, rounds).expect("no safety violation");
        let logs: Vec<Log> = exec.states().iter().map(|s| s.log().to_vec()).collect();
        prop_assert!(prefix_consistent(&logs), "fork: {logs:?}");
    }

    /// Slot k's decision is one of the slot-k proposals (integrity per slot).
    #[test]
    fn slot_integrity(script in arb_script(4, 24)) {
        let n = 4;
        let rounds = script.len() as u64;
        let mut exec = RoundExecutor::new(make(n), (0..n as u64).collect());
        let mut adv = Scripted::new(script);
        exec.run(&mut adv, rounds).expect("no safety violation");
        for s in exec.states() {
            for (k, v) in s.log().iter().enumerate() {
                let k = k as u64;
                prop_assert!(
                    (100 * k..100 * k + n as u64).contains(v),
                    "slot {k} decided {v}"
                );
            }
        }
    }

    /// Logs are monotone: chaos then healing only extends them.
    #[test]
    fn logs_grow_monotonically(script in arb_script(4, 16)) {
        let n = 4;
        let rounds = script.len() as u64;
        let mut exec = RoundExecutor::new(make(n), (0..n as u64).collect());
        let mut adv = Scripted::new(script);
        exec.run(&mut adv, rounds).expect("no violation");
        let before: Vec<Log> = exec.states().iter().map(|s| s.log().to_vec()).collect();
        exec.run(&mut FullDelivery, 4).expect("no violation");
        let after: Vec<Log> = exec.states().iter().map(|s| s.log().to_vec()).collect();
        for (b, a) in before.iter().zip(&after) {
            prop_assert!(a.len() >= b.len());
            prop_assert_eq!(&a[..b.len()], &b[..]);
        }
    }
}

#[test]
fn healthy_network_sustains_one_slot_per_two_rounds() {
    let n = 4;
    let mut exec = RoundExecutor::new(make(n), (0..n as u64).collect());
    exec.run(&mut FullDelivery, 40).unwrap();
    for s in exec.states() {
        assert_eq!(s.log().len(), 20, "OneThirdRule decides every 2 rounds");
    }
}
