//! Property suite: streaming predicate monitors ≡ retained-trace batch
//! searches.
//!
//! Three layers of evidence, each polling a [`WindowMonitor`] and the
//! corresponding `SystemTrace::find_*` batch search in lockstep on
//! identical observations and demanding the identical `(ρ0, time)`
//! witness at the first poll where either side reports one:
//!
//! 1. **Model level** — `TraceMode::Full` executor runs across the full
//!    adversary zoo, `n ∈ {4, 7, 13}`, 50 seeds: the monitor rides the
//!    round-observer hook while the batch search re-scans the retained
//!    trace after every round.
//! 2. **Skew level** — synthetic per-process logs delivered in random
//!    interleavings with non-decreasing (sometimes equal) timestamps and
//!    skipped rounds: the failure-frontier logic must stay exact when
//!    processes lag arbitrarily.
//! 3. **System level** — the rewired `measure_*` entry points (monitor-
//!    polling) against a re-implementation of the old `SystemTrace`
//!    polling loop on an identical simulation.

use heardof::core::algorithms::{LastVoting, OneThirdRule};
use heardof::core::executor::RoundExecutor;
use heardof::core::observer::RoundObserver;
use heardof::core::process::{ProcessId, ProcessSet};
use heardof::core::round::Round;
use heardof::core::trace::TraceMode;
use heardof::core::HoAlgorithm;
use heardof::harness::AdversarySpec;
use heardof::predicates::monitor::WindowMonitor;
use heardof::predicates::record::{RoundLog, RoundRecord, SystemTrace};

const SEEDS: u64 = 50;
const ROUNDS: u64 = 25;

/// The full adversary zoo of the sweep grid.
fn zoo() -> Vec<AdversarySpec> {
    vec![
        AdversarySpec::FullDelivery,
        AdversarySpec::RandomLoss { loss: 0.2 },
        AdversarySpec::RandomLoss { loss: 0.45 },
        AdversarySpec::Partition { blocks: 2 },
        AdversarySpec::CrashRecovery,
        AdversarySpec::KernelOnly { loss: 0.8 },
        AdversarySpec::EventuallyGood {
            bad_rounds: 5,
            loss: 0.5,
        },
    ]
}

/// What batch search a monitor must match.
#[derive(Clone, Copy)]
enum Kind {
    Kernel(u64),
    SpaceUniform(u64),
    P2otr,
}

fn monitors_for(n: usize) -> Vec<(Kind, ProcessSet, WindowMonitor)> {
    let scopes = [
        ProcessSet::full(n),
        ProcessSet::from_indices(0..(2 * n).div_ceil(3)),
    ];
    let mut out = Vec::new();
    for pi0 in scopes {
        for kind in [
            Kind::Kernel(1),
            Kind::Kernel(3),
            Kind::SpaceUniform(2),
            Kind::P2otr,
        ] {
            let monitor = match kind {
                Kind::Kernel(x) => WindowMonitor::kernel(pi0, x, 0.0),
                Kind::SpaceUniform(x) => WindowMonitor::space_uniform(pi0, x, 0.0),
                Kind::P2otr => WindowMonitor::p2otr(pi0, 0.0),
            };
            out.push((kind, pi0, monitor));
        }
    }
    out
}

fn batch_find(st: &SystemTrace, kind: Kind, pi0: ProcessSet) -> Option<(u64, f64)> {
    match kind {
        Kind::Kernel(x) => st.find_kernel_window(pi0, x, 0.0),
        Kind::SpaceUniform(x) => st.find_space_uniform_window(pi0, x, 0.0),
        Kind::P2otr => st.find_p2otr(pi0, 0.0),
    }
}

/// A per-process log that a `SystemTrace` can observe incrementally.
#[derive(Default)]
struct GrowingLog(Vec<RoundRecord>);

impl RoundLog for GrowingLog {
    fn records(&self) -> &[RoundRecord] {
        &self.0
    }
}

/// Runs one full-trace executor scenario, feeding monitors and the batch
/// trace in lockstep and asserting identical witnesses at every poll up to
/// (and including) the first witness.
fn check_model_level<A: HoAlgorithm<Value = u64>>(alg: A, spec: &AdversarySpec, seed: u64) {
    let n = alg.n();
    let label = format!("{}/n{n}/s{seed}", spec.name());
    let values: Vec<u64> = (0..n as u64).map(|v| v % 3).collect();
    let mut adversary = spec.build(n, seed);
    let mut exec = RoundExecutor::with_trace_mode(alg, values, TraceMode::Full);

    let mut monitors = monitors_for(n);
    let mut done = vec![false; monitors.len()];
    let mut st = SystemTrace::new(n);
    let mut logs: Vec<GrowingLog> = (0..n).map(|_| GrowingLog::default()).collect();

    for _ in 0..ROUNDS {
        // One observed round for the monitors…
        struct Feed<'m> {
            monitors: &'m mut Vec<(Kind, ProcessSet, WindowMonitor)>,
        }
        impl RoundObserver for Feed<'_> {
            fn observe_round(&mut self, r: Round, ho: &[ProcessSet]) {
                for (_, _, m) in self.monitors.iter_mut() {
                    m.observe_round(r, ho);
                }
            }
        }
        let mut feed = Feed {
            monitors: &mut monitors,
        };
        exec.step_observed(&mut adversary, &mut feed).expect("safe");

        // …and the same round appended to the batch trace, stamped — like
        // the observer feed — with the round number.
        let r = exec.current_round();
        let row = exec.trace().round(r);
        for (p, log) in logs.iter_mut().enumerate() {
            log.0.push(RoundRecord {
                round: r.get(),
                ho: row[p],
            });
        }
        st.observe(&logs, r.get() as f64);

        for (i, (kind, pi0, monitor)) in monitors.iter_mut().enumerate() {
            if done[i] {
                continue;
            }
            let batch = batch_find(&st, *kind, *pi0);
            let streamed = monitor.witness();
            assert_eq!(
                streamed, batch,
                "{label}: monitor {i} diverged from batch at round {r}"
            );
            done[i] = streamed.is_some();
        }
    }
}

#[test]
fn monitors_equal_batch_searches_across_the_adversary_zoo() {
    for seed in 0..SEEDS {
        for spec in zoo() {
            for n in [4, 7, 13] {
                check_model_level(OneThirdRule::new(n), &spec, seed);
            }
        }
    }
}

#[test]
fn monitors_equal_batch_searches_under_sparse_unicast_rounds() {
    // LastVoting's silent and unicast rounds produce sparse effective HO
    // sets — a different shape of rows than any broadcast algorithm.
    for seed in 0..SEEDS / 5 {
        for spec in zoo() {
            for n in [4, 7, 13] {
                check_model_level(LastVoting::new(n), &spec, seed);
            }
        }
    }
}

/// xorshift64* — deterministic test randomness without a dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn monitors_survive_arbitrary_process_skew() {
    // Synthetic per-process logs delivered in random interleavings: lagging
    // processes, skipped rounds, equal timestamps across polls. The
    // monitor's frontier eviction must never lose a window the batch
    // search would find.
    let n = 5;
    let max_round = 20u64;
    for seed in 0..SEEDS {
        let mut rng = Rng(seed * 2 + 1);
        let pi0 = if seed % 2 == 0 {
            ProcessSet::full(n)
        } else {
            ProcessSet::from_indices(0..3)
        };
        // Each process's schedule: strictly increasing rounds with gaps,
        // HO sets biased so windows actually occur.
        let mut schedules: Vec<Vec<RoundRecord>> = (0..n)
            .map(|_| {
                let mut recs = Vec::new();
                let mut r = 1;
                while r <= max_round {
                    let ho = match rng.next() % 5 {
                        0 | 1 => pi0,
                        2 => pi0.union(ProcessSet::from_indices([n - 1])),
                        3 => {
                            let mut s = pi0;
                            s.remove(ProcessId::new((rng.next() % 3) as usize));
                            s
                        }
                        _ => ProcessSet::empty(),
                    };
                    recs.push(RoundRecord { round: r, ho });
                    // Occasionally skip a round entirely.
                    r += 1 + u64::from(rng.next().is_multiple_of(7));
                }
                recs
            })
            .collect();

        for kind in [Kind::Kernel(2), Kind::SpaceUniform(2), Kind::P2otr] {
            let mut monitor = match kind {
                Kind::Kernel(x) => WindowMonitor::kernel(pi0, x, 0.0),
                Kind::SpaceUniform(x) => WindowMonitor::space_uniform(pi0, x, 0.0),
                Kind::P2otr => WindowMonitor::p2otr(pi0, 0.0),
            };
            let mut st = SystemTrace::new(n);
            let mut logs: Vec<GrowingLog> = (0..n).map(|_| GrowingLog::default()).collect();
            let mut cursors = vec![0usize; n];
            let mut interleave = Rng(seed ^ 0xD1CE);
            let mut now = 0.0f64;
            loop {
                // Pick a random process that still has records to deliver.
                let pending: Vec<usize> = (0..n)
                    .filter(|&p| cursors[p] < schedules[p].len())
                    .collect();
                let Some(&p) = pending.get((interleave.next() as usize) % pending.len().max(1))
                else {
                    break;
                };
                let rec = schedules[p][cursors[p]];
                cursors[p] += 1;
                // Timestamps advance sometimes — equal stamps across polls
                // are legal and must not break the tie-break equivalence.
                if !interleave.next().is_multiple_of(3) {
                    now += 1.0;
                }
                monitor.observe_event(ProcessId::new(p), rec.round, rec.ho, now);
                logs[p].0.push(rec);
                st.observe(&logs, now);

                let batch = batch_find(&st, kind, pi0);
                let streamed = monitor.witness();
                assert_eq!(streamed, batch, "seed {seed}: diverged at t={now}");
                if streamed.is_some() {
                    break;
                }
            }
        }
        // Keep the borrow checker honest about reuse across kinds.
        schedules.clear();
    }
}

mod system_level {
    //! The rewired `measure_*` entry points against the old retained-trace
    //! polling loop, on identical simulations.

    use heardof::core::algorithms::OneThirdRule;
    use heardof::core::contact::ContactPlan;
    use heardof::core::process::{ProcessId, ProcessSet};
    use heardof::predicates::measure::{measure_alg2_space_uniform, measure_alg3_kernel, Scenario};
    use heardof::predicates::record::SystemTrace;
    use heardof::predicates::{Alg2Program, Alg3Program, BoundParams};
    use heardof::sim::{
        BadPeriodConfig, GoodKind, LinkSchedule, Schedule, SimConfig, Simulator, TimePoint,
    };

    const RECORD_WINDOW: usize = 64;
    const DEADLINE_FACTOR: f64 = 6.0;

    /// The pre-monitor implementation of `measure_alg2_space_uniform`'s
    /// polling loop: retained `SystemTrace`, full re-scan per poll.
    fn batch_alg2(
        params: BoundParams,
        pi0: ProcessSet,
        x: u64,
        scenario: Scenario,
        seed: u64,
    ) -> Option<(u64, f64)> {
        let n = params.n;
        let cfg = SimConfig::normalized(n, params.phi, params.delta).with_seed(seed);
        let schedule = match scenario {
            Scenario::Initial => Schedule::always_good(pi0, GoodKind::PiDown),
            Scenario::AfterBad { bad_len, bad } => {
                Schedule::bad_then_good(bad, TimePoint::new(bad_len), pi0, GoodKind::PiDown)
            }
            Scenario::AfterContactPlan {
                plan,
                seed,
                round_len,
            } => {
                let link = LinkSchedule::new(plan, seed, n, round_len);
                let horizon = link.horizon();
                Schedule::bad_then_good(BadPeriodConfig::calm(), horizon, pi0, GoodKind::PiDown)
                    .with_link_schedule(link)
            }
        };
        let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
            .map(|p| {
                Alg2Program::new(
                    OneThirdRule::new(n),
                    ProcessId::new(p),
                    p as u64,
                    params.alg2_timeout(),
                )
                .with_record_window(RECORD_WINDOW)
            })
            .collect();
        let mut sim = Simulator::new(cfg, schedule, programs);
        let good_start = scenario.good_start();
        let bound = match scenario {
            Scenario::Initial => params.theorem5(x),
            Scenario::AfterBad { .. } | Scenario::AfterContactPlan { .. } => params.theorem3(x),
        };
        let deadline = TimePoint::new(good_start + bound * DEADLINE_FACTOR);
        let mut st = SystemTrace::new(n);
        let mut witness = None;
        sim.run_until(deadline, |s| {
            st.observe(s.programs(), s.now().get());
            witness = st.find_space_uniform_window(pi0, x, good_start);
            witness.is_some()
        });
        witness
    }

    /// The pre-monitor implementation of `measure_alg3_kernel`'s loop.
    fn batch_alg3(
        params: BoundParams,
        f: usize,
        x: u64,
        scenario: Scenario,
        seed: u64,
    ) -> Option<(u64, f64)> {
        let n = params.n;
        let pi0 = ProcessSet::from_indices(0..n - f);
        let cfg = SimConfig::normalized(n, params.phi, params.delta).with_seed(seed);
        let schedule = match scenario {
            Scenario::Initial => Schedule::always_good(pi0, GoodKind::PiArbitrary),
            Scenario::AfterBad { bad_len, bad } => {
                Schedule::bad_then_good(bad, TimePoint::new(bad_len), pi0, GoodKind::PiArbitrary)
            }
            Scenario::AfterContactPlan {
                plan,
                seed,
                round_len,
            } => {
                let link = LinkSchedule::new(plan, seed, n, round_len);
                let horizon = link.horizon();
                Schedule::bad_then_good(
                    BadPeriodConfig::calm(),
                    horizon,
                    pi0,
                    GoodKind::PiArbitrary,
                )
                .with_link_schedule(link)
            }
        };
        let programs: Vec<Alg3Program<OneThirdRule>> = (0..n)
            .map(|p| {
                Alg3Program::new(
                    OneThirdRule::new(n),
                    ProcessId::new(p),
                    p as u64,
                    f,
                    params.alg3_timeout(),
                )
                .with_record_window(RECORD_WINDOW)
            })
            .collect();
        let mut sim = Simulator::new(cfg, schedule, programs);
        let good_start = scenario.good_start();
        let bound = match scenario {
            Scenario::Initial => params.theorem7(x),
            Scenario::AfterBad { .. } | Scenario::AfterContactPlan { .. } => params.theorem6(x),
        };
        let deadline = TimePoint::new(good_start + bound * DEADLINE_FACTOR);
        let mut st = SystemTrace::new(n);
        let mut witness = None;
        sim.run_until(deadline, |s| {
            st.observe(s.programs(), s.now().get());
            witness = st.find_kernel_window(pi0, x, good_start);
            witness.is_some()
        });
        witness
    }

    #[test]
    fn rewired_alg2_measurement_matches_the_batch_loop() {
        let params = BoundParams::new(4, 1.0, 2.0);
        for (pi0, scenario, seed) in [
            (ProcessSet::full(4), Scenario::Initial, 1),
            (ProcessSet::full(4), Scenario::rough(60.0), 2),
            (ProcessSet::from_indices(0..3), Scenario::rough(40.0), 7),
            (
                ProcessSet::full(4),
                Scenario::contact(
                    ContactPlan::Episodic {
                        dark: 3,
                        bright: 2,
                        cycles: 2,
                    },
                    5,
                    5.0,
                ),
                4,
            ),
        ] {
            let m = measure_alg2_space_uniform(params, pi0, 2, scenario, seed);
            let batch = batch_alg2(params, pi0, 2, scenario, seed);
            assert_eq!(m.rho0, batch.map(|(r, _)| r), "seed {seed}");
            assert_eq!(m.achieved_at, batch.map(|(_, t)| t), "seed {seed}");
        }
    }

    #[test]
    fn rewired_alg3_measurement_matches_the_batch_loop() {
        for (n, f, scenario, seed) in [
            (4, 1, Scenario::Initial, 3),
            (5, 2, Scenario::rough(80.0), 0),
            (
                4,
                1,
                Scenario::contact(ContactPlan::StoreAndForward { dark: 8 }, 6, 2.5),
                1,
            ),
        ] {
            let params = BoundParams::new(n, 1.0, 2.0);
            let m = measure_alg3_kernel(params, f, 2, scenario, seed);
            let batch = batch_alg3(params, f, 2, scenario, seed);
            assert_eq!(m.rho0, batch.map(|(r, _)| r), "seed {seed}");
            assert_eq!(m.achieved_at, batch.map(|(_, t)| t), "seed {seed}");
        }
    }
}
