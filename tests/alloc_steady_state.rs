//! Proof that the round hot loop is allocation-free in steady state.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase (capacity growth, first-round payload construction), running
//! hundreds of further rounds of a broadcast algorithm must perform **zero**
//! heap allocations: mailboxes clear in place, the outbox rewrites its
//! recycled payload `Arc`s, the adversary fills a reused scratch slice, and
//! the statistics-only trace never materialises a row.
//!
//! Counting is gated on a thread-local flag set only around the measured
//! window: the libtest harness's main thread allocates in the background
//! (channel and thread-bookkeeping lazy init), and a process-global count
//! would flake on those. All phases still run inside a single `#[test]` so
//! the measured windows stay serial.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use heardof::core::adversary::{Adversary, FullDelivery, KernelOnly, RandomLoss};
use heardof::core::algorithms::{LastVoting, OneThirdRule, UniformVoting};
use heardof::core::contact::{ContactPlan, ContactPlanAdversary};
use heardof::core::executor::RoundExecutor;
use heardof::core::observer::RoundObserver;
use heardof::core::process::ProcessSet;
use heardof::core::round::Round;
use heardof::core::telemetry::Telemetry;
use heardof::core::trace::TraceMode;
use heardof::core::HoAlgorithm;
use heardof::predicates::monitor::{ScenarioMonitor, WindowMonitor};
use heardof::predicates::{Alg2Program, Alg3Program, BoundParams};
use heardof::rsm::{LogDriver, RsmConfig, WorkloadSpec};
use heardof::sim::{GoodKind, Program, Schedule, SimConfig, Simulator, TimePoint};

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Whether allocations on *this* thread are being counted.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

fn tracking() -> bool {
    // `try_with`: the allocator can run during thread teardown, after the
    // thread-local has been destroyed.
    TRACKING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if tracking() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if tracking() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

/// Allocations performed by `f` on the calling thread.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    TRACKING.with(|t| t.set(true));
    f();
    TRACKING.with(|t| t.set(false));
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Warm an executor up, then count allocations over `rounds` further rounds.
fn steady_state_allocs<A: HoAlgorithm<Value = u64>>(
    alg: A,
    values: Vec<u64>,
    adversary: impl Adversary,
    mode: TraceMode,
    rounds: u64,
) -> u64 {
    steady_state_allocs_observed(
        alg,
        values,
        adversary,
        mode,
        20,
        rounds,
        heardof::core::observer::NullObserver,
    )
}

/// [`steady_state_allocs`] with an explicit warm-up length and a streaming
/// round observer attached for the whole run (warm-up included). Rotating-
/// coordinator algorithms need the warm-up to cover a full rotation: each
/// process's first coordinator phase grows its mailbox capacity once.
fn steady_state_allocs_observed<A: HoAlgorithm<Value = u64>>(
    alg: A,
    values: Vec<u64>,
    mut adversary: impl Adversary,
    mode: TraceMode,
    warm_rounds: u64,
    rounds: u64,
    mut observer: impl RoundObserver,
) -> u64 {
    let mut exec = RoundExecutor::with_trace_mode(alg, values, mode);
    exec.run_observed(&mut adversary, warm_rounds, &mut observer)
        .expect("warm-up safe");
    allocs_during(|| {
        exec.run_observed(&mut adversary, rounds, &mut observer)
            .expect("steady state safe")
    })
}

#[test]
fn zero_allocations_per_round_in_steady_state() {
    let n = 8;
    let values: Vec<u64> = (0..n as u64).map(|v| v % 3).collect();

    // The headline claim: a broadcast algorithm at n = 8 under the
    // statistics-only trace — the sweep configuration — allocates nothing
    // per round, under full delivery and under lossy adversaries (whose
    // HO sets churn every round).
    assert_eq!(
        steady_state_allocs(
            OneThirdRule::new(n),
            values.clone(),
            FullDelivery,
            TraceMode::Off,
            300,
        ),
        0,
        "OneThirdRule / FullDelivery / TraceMode::Off"
    );
    assert_eq!(
        steady_state_allocs(
            OneThirdRule::new(n),
            values.clone(),
            RandomLoss::new(0.4, 7),
            TraceMode::Off,
            300,
        ),
        0,
        "OneThirdRule / RandomLoss / TraceMode::Off"
    );
    assert_eq!(
        steady_state_allocs(
            UniformVoting::new(n),
            values.clone(),
            KernelOnly::new(0.8, 3),
            TraceMode::Off,
            300,
        ),
        0,
        "UniformVoting / KernelOnly / TraceMode::Off"
    );

    // A contact-plan adversary keeps the same discipline while the plan
    // is still *active*: phase arithmetic over Copy bitsets, no per-round
    // state. The cycle count pushes good_from past the measured window,
    // so every counted round runs partitioned-or-bright churn, not the
    // trivial all-up suffix.
    let episodic_forever = ContactPlan::Episodic {
        dark: 3,
        bright: 2,
        cycles: 200,
    };
    assert_eq!(
        steady_state_allocs(
            OneThirdRule::new(n),
            values.clone(),
            ContactPlanAdversary::new(episodic_forever, 7),
            TraceMode::Off,
            300,
        ),
        0,
        "OneThirdRule / ContactPlanAdversary(episodic) / TraceMode::Off"
    );

    // Past 16 mailbox entries the transition functions' mode computation
    // takes the sorted spill path — which must stay allocation-free too
    // (it sorts a stack buffer, never a heap one).
    assert_eq!(
        steady_state_allocs(
            OneThirdRule::new(24),
            (0..24u64).map(|v| v % 3).collect(),
            FullDelivery,
            TraceMode::Off,
            200,
        ),
        0,
        "OneThirdRule n=24 / FullDelivery — spilled mode_with_count path"
    );

    // A bounded trace window recycles its row buffers: still zero.
    assert_eq!(
        steady_state_allocs(
            OneThirdRule::new(n),
            values.clone(),
            RandomLoss::new(0.4, 7),
            TraceMode::Window(4),
            300,
        ),
        0,
        "OneThirdRule / RandomLoss / TraceMode::Window(4)"
    );

    // LastVoting alternates plan shapes (unicast → broadcast) across the
    // four phase offsets and rotates its coordinator every phase. The
    // outbox-wide retired-payload pool serves each displaced broadcast
    // `Arc` to whichever sender broadcasts next, the destination vectors
    // stay warm per sender, and unicast deliveries clone into payloads the
    // recipient's mailbox retired — so the steady state is **zero**, like
    // the broadcast algorithms. Steady state begins once every process has
    // coordinated a phase (its mailbox capacity grows the first time it
    // collects n estimates), so the warm-up covers a full rotation.
    let rotation = 4 * n as u64 + 4;
    assert_eq!(
        steady_state_allocs_observed(
            LastVoting::new(n),
            values.clone(),
            FullDelivery,
            TraceMode::Off,
            rotation,
            300,
            heardof::core::observer::NullObserver,
        ),
        0,
        "LastVoting / FullDelivery / TraceMode::Off"
    );
    assert_eq!(
        steady_state_allocs_observed(
            LastVoting::new(n),
            values.clone(),
            RandomLoss::new(0.4, 7),
            TraceMode::Off,
            rotation,
            300,
            heardof::core::observer::NullObserver,
        ),
        0,
        "LastVoting / RandomLoss / TraceMode::Off"
    );

    // Online predicate monitoring rides the round-observer hook without
    // breaking the zero-allocation property: the scenario statistics
    // monitor is O(1) state, and the window monitors' failure-frontier
    // ring buffers recycle. (The space-uniform window never completes
    // under this loss rate, so the window monitor streams the whole time.)
    struct Monitors {
        stats: ScenarioMonitor,
        kernel: WindowMonitor,
        uniform: WindowMonitor,
    }
    impl RoundObserver for Monitors {
        fn observe_round(&mut self, r: Round, ho: &[heardof::core::process::ProcessSet]) {
            self.stats.observe_round(r, ho);
            self.kernel.observe_round(r, ho);
            self.uniform.observe_round(r, ho);
        }
    }
    let monitors = Monitors {
        stats: ScenarioMonitor::new(n),
        kernel: WindowMonitor::kernel(ProcessSet::full(n), 3, 0.0),
        uniform: WindowMonitor::space_uniform(ProcessSet::full(n), 4, 0.0),
    };
    assert_eq!(
        steady_state_allocs_observed(
            OneThirdRule::new(n),
            values.clone(),
            RandomLoss::new(0.4, 7),
            TraceMode::Off,
            20,
            300,
            monitors,
        ),
        0,
        "OneThirdRule / RandomLoss / TraceMode::Off + active monitors"
    );

    // The flight recorder and metrics registry ride the hot loop under
    // the same discipline: with telemetry on — the ring recording every
    // round, span timers feeding the per-phase histograms — steady state
    // is still zero. The ring is fixed-capacity, so a long window makes
    // it wrap; wrap-around overwrites in place, never grows.
    let mut exec =
        RoundExecutor::with_trace_mode(OneThirdRule::new(n), values.clone(), TraceMode::Off);
    exec.set_telemetry(Telemetry::on());
    let mut adv = RandomLoss::new(0.4, 7);
    exec.run_observed(&mut adv, 20, &mut heardof::core::observer::NullObserver)
        .expect("warm-up safe");
    assert_eq!(
        allocs_during(|| {
            exec.run_observed(&mut adv, 300, &mut heardof::core::observer::NullObserver)
                .expect("steady state safe");
        }),
        0,
        "OneThirdRule / RandomLoss / TraceMode::Off + active flight recorder"
    );
    let digest = exec
        .telemetry()
        .summary()
        .expect("telemetry was installed, so a digest exists");
    assert!(
        digest.events_recorded > 0,
        "the recorder was live during the measured window"
    );
    assert!(
        digest.total_ticks() > 0,
        "the span timers measured the phases"
    );

    // Contrast: the full trace necessarily allocates (every round appends
    // a retained row). This guards against the Off/Window paths silently
    // degrading into Full.
    let full = steady_state_allocs(
        OneThirdRule::new(n),
        values,
        FullDelivery,
        TraceMode::Full,
        300,
    );
    assert!(
        full > 0,
        "TraceMode::Full retains rows, so it must allocate"
    );
}

#[test]
fn multi_slot_log_driver_zero_allocations_per_round_in_steady_state() {
    // The pipelined replicated log inherits the hot loop's allocation
    // discipline *per round, not per slot*: with `depth` slots in flight,
    // every round runs `depth` inner instances per process, multiplexes
    // them into one pooled bundle, applies decided slots and admits new
    // client commands — and once warm none of it touches the allocator.
    // The window cells, bundle entry vectors, pending queues, latency
    // sample buffers and applied logs are all pre-reserved or recycled.
    let n = 8;
    let mut cfg = RsmConfig::with_depth(4);
    // Budget the measured run explicitly: ~2 slots/round for 340 rounds
    // plus warm-up fits comfortably, so the applied log and the latency
    // samples never grow their allocation inside the window.
    cfg.reserve_slots = 2048;
    cfg.reserve_commands = 4096;

    // Open loop at 2 commands/round: slots keep deciding, batches keep
    // forming, the queue keeps draining — the full service path is hot.
    let mut driver = LogDriver::new(
        OneThirdRule::new(n),
        WorkloadSpec::FixedRate { per_round: 2 },
        cfg,
        13,
    );
    driver.run(&mut FullDelivery, 40).expect("warm-up safe");
    assert_eq!(
        allocs_during(|| driver
            .run(&mut FullDelivery, 300)
            .expect("steady state safe")),
        0,
        "LogDriver depth=4 / FixedRate / FullDelivery"
    );
    let check = driver.check();
    assert!(check.is_ok(), "{:?}", check.violation);
    assert!(check.commands > 0, "the measured window did real work");

    // Same discipline under churning HO sets (lossy rounds requeue losing
    // batches and trigger decided-entry adoption) and a deeper pipeline.
    let mut cfg = RsmConfig::with_depth(8);
    cfg.reserve_slots = 2048;
    cfg.reserve_commands = 4096;
    let mut driver = LogDriver::new(
        OneThirdRule::new(n),
        WorkloadSpec::FixedRate { per_round: 2 },
        cfg,
        13,
    );
    let mut adv = RandomLoss::new(0.25, 7);
    driver.run(&mut adv, 60).expect("warm-up safe");
    assert_eq!(
        allocs_during(|| driver.run(&mut adv, 300).expect("steady state safe")),
        0,
        "LogDriver depth=8 / FixedRate / RandomLoss(0.25)"
    );
    let check = driver.check();
    assert!(check.is_ok(), "{:?}", check.violation);

    // The disruption-tolerant path: episodic partitions keep the log
    // diverging and re-converging, so the backfill lane (bundle backfill
    // entries on the send side, decided-slot adoption on the receive
    // side) and the per-round convergence scan are all hot — and still
    // allocation-free. The plan's cycle count keeps it active for the
    // whole measured window.
    let mut cfg = RsmConfig::with_depth(4);
    cfg.reserve_slots = 2048;
    cfg.reserve_commands = 4096;
    let mut driver = LogDriver::new(
        OneThirdRule::new(n),
        WorkloadSpec::FixedRate { per_round: 2 },
        cfg,
        13,
    );
    let plan = heardof::core::contact::ContactPlan::Episodic {
        dark: 3,
        bright: 2,
        cycles: 200,
    };
    let mut adv = heardof::core::contact::ContactPlanAdversary::new(plan, 7);
    driver.run(&mut adv, 60).expect("warm-up safe");
    assert_eq!(
        allocs_during(|| driver.run(&mut adv, 300).expect("steady state safe")),
        0,
        "LogDriver depth=4 / FixedRate / ContactPlanAdversary(episodic)"
    );
    let check = driver.check();
    assert!(check.is_ok(), "{:?}", check.violation);
}

#[test]
fn sharded_log_driver_zero_allocations_per_round_in_steady_state() {
    // Sharding adds a router and S independent groups — and must add
    // *zero* allocator traffic: routing happens at generation (each
    // group's workload generator filters and renumbers in place), the
    // groups recycle their own scratches, and the front end holds no
    // queues. Four groups, lossy delivery, the full service path hot.
    let n = 4;
    let shards = 4;
    let mut cfg = RsmConfig::with_depth(4);
    cfg.reserve_slots = 2048;
    cfg.reserve_commands = 4096;
    let mut driver = heardof::rsm::ShardedLogDriver::new(
        |_| OneThirdRule::new(n),
        WorkloadSpec::FixedRate { per_round: 2 },
        cfg,
        shards,
        13,
    );
    // Boxing the per-shard adversaries allocates, so build them before
    // the measured window opens.
    let mut advs: Vec<Box<dyn Adversary + Send>> = (0..shards)
        .map(|s| {
            Box::new(RandomLoss::new(0.25, heardof::rsm::shard_seed(7, s)))
                as Box<dyn Adversary + Send>
        })
        .collect();
    // Sparser per-group streams (each shard keeps ~1/S of the keys) make
    // queue depths fluctuate more slowly than in the unsharded case, so
    // capacity high-water marks are reached later: warm a few hundred
    // rounds before the window opens.
    driver.run(&mut advs, 300).expect("warm-up safe");
    assert_eq!(
        allocs_during(|| driver.run(&mut advs, 300).expect("steady state safe")),
        0,
        "ShardedLogDriver S=4 / FixedRate / RandomLoss(0.25)"
    );
    let check = driver.check();
    assert!(check.is_ok(), "{:?}", check.violation);
    assert!(check.commands > 0, "the measured window did real work");
}

/// Warm a simulator up to `warm_until`, then count allocations while it
/// runs on to `measure_until`.
fn sim_steady_state_allocs<P: Program>(
    mut sim: Simulator<P>,
    warm_until: f64,
    measure_until: f64,
) -> u64 {
    sim.run_for(TimePoint::new(warm_until));
    allocs_during(|| sim.run_for(TimePoint::new(measure_until)))
}

/// Bounded record window for the measured sim programs: enough slack for
/// any batch of rounds one event can complete, small enough that the log
/// ring never grows during the measured window.
const SIM_RECORD_WINDOW: usize = 64;

#[test]
fn sim_engine_zero_allocations_per_round_in_steady_state() {
    // The system-level counterpart of the executor's headline claim: with
    // the engine fanning pooled plans out by refcount and Algorithms 2/3
    // writing payload and wire envelope through pool-backed plan slots, a
    // warmed-up simulation allocates **nothing** — event queue, buffers,
    // stored messages, mailboxes and pools all recycle. Recipients hold
    // payloads across rounds here, so this is exactly the regime PR 3's
    // executor-side pool could not serve.
    let n = 8;
    let params = BoundParams::new(n, 1.0, 2.0);

    // Algorithm 2 in a Π-down good period (everyone synchronous).
    let cfg = SimConfig::normalized(n, 1.0, 2.0).with_seed(9);
    let schedule = Schedule::always_good(ProcessSet::full(n), GoodKind::PiDown);
    let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg2Program::new(
                OneThirdRule::new(n),
                heardof::core::process::ProcessId::new(p),
                p as u64 % 3,
                params.alg2_timeout(),
            )
            .with_record_window(SIM_RECORD_WINDOW)
        })
        .collect();
    let sim = Simulator::new(cfg, schedule, programs);
    assert_eq!(
        sim_steady_state_allocs(sim, 400.0, 800.0),
        0,
        "Alg2 / always-good / n=8"
    );

    // Algorithm 3 in a Π-arbitrary good period: rounds advance through the
    // INIT quorum machinery, so the INIT resend path is in steady state too.
    let f = 3;
    let cfg = SimConfig::normalized(n, 1.0, 2.0).with_seed(11);
    let schedule = Schedule::always_good(ProcessSet::full(n), GoodKind::PiArbitrary);
    let programs: Vec<Alg3Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg3Program::new(
                OneThirdRule::new(n),
                heardof::core::process::ProcessId::new(p),
                p as u64 % 3,
                f,
                params.alg3_timeout(),
            )
            .with_record_window(SIM_RECORD_WINDOW)
        })
        .collect();
    let sim = Simulator::new(cfg, schedule, programs);
    assert_eq!(
        sim_steady_state_allocs(sim, 400.0, 800.0),
        0,
        "Alg3 / always-good / n=8"
    );

    // The calendar wheel with an episodic contact plan gating links
    // throughout the measured window: scheduled outages make delivery
    // bursty (dark spells queue timeouts, bright spells flood the wheel),
    // yet the node arena, bucket lists and per-recipient buffers must all
    // have reached their high-water marks during warm-up. The plan's
    // horizon (200 cycles × 5 rounds × 2.0/round = 2000) lies far past the
    // window, so the link schedule is *active*, not vacuous.
    let plan = ContactPlan::Episodic {
        dark: 3,
        bright: 2,
        cycles: 200,
    };
    let cfg = SimConfig::normalized(n, 1.0, 2.0).with_seed(13);
    assert!(matches!(cfg.scheduler, heardof::sim::SchedulerKind::Wheel));
    let link = heardof::sim::LinkSchedule::new(plan, 13, n, 2.0);
    assert!(
        link.horizon() > TimePoint::new(800.0),
        "plan outlives window"
    );
    let schedule =
        Schedule::always_good(ProcessSet::full(n), GoodKind::PiDown).with_link_schedule(link);
    let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg2Program::new(
                OneThirdRule::new(n),
                heardof::core::process::ProcessId::new(p),
                p as u64 % 3,
                params.alg2_timeout(),
            )
            .with_record_window(SIM_RECORD_WINDOW)
        })
        .collect();
    let sim = Simulator::new(cfg, schedule, programs);
    assert_eq!(
        sim_steady_state_allocs(sim, 400.0, 800.0),
        0,
        "Alg2 / wheel / episodic contact plan / n=8"
    );

    // The system layer keeps the discipline with the flight recorder on:
    // every scheduler dispatch records an event (so the ring wraps many
    // times over a 400-time-unit window), and the measured window still
    // touches the allocator zero times.
    let cfg = SimConfig::normalized(n, 1.0, 2.0).with_seed(9);
    let schedule = Schedule::always_good(ProcessSet::full(n), GoodKind::PiDown);
    let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg2Program::new(
                OneThirdRule::new(n),
                heardof::core::process::ProcessId::new(p),
                p as u64 % 3,
                params.alg2_timeout(),
            )
            .with_record_window(SIM_RECORD_WINDOW)
        })
        .collect();
    let mut sim = Simulator::new(cfg, schedule, programs);
    sim.set_telemetry(Telemetry::on());
    sim.run_for(TimePoint::new(400.0));
    assert_eq!(
        allocs_during(|| sim.run_for(TimePoint::new(800.0))),
        0,
        "Alg2 / always-good / n=8 + active flight recorder"
    );
    let digest = sim
        .telemetry()
        .summary()
        .expect("telemetry was installed, so a digest exists");
    assert!(
        digest.events_recorded > 0,
        "the recorder was live during the measured window"
    );
    assert!(
        digest.events_dropped > 0,
        "per-dispatch events must wrap the ring over a 400-unit window"
    );
}
