//! Proof that the round hot loop is allocation-free in steady state.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase (capacity growth, first-round payload construction), running
//! hundreds of further rounds of a broadcast algorithm must perform **zero**
//! heap allocations: mailboxes clear in place, the outbox rewrites its
//! recycled payload `Arc`s, the adversary fills a reused scratch slice, and
//! the statistics-only trace never materialises a row.
//!
//! Counting is gated on a thread-local flag set only around the measured
//! window: the libtest harness's main thread allocates in the background
//! (channel and thread-bookkeeping lazy init), and a process-global count
//! would flake on those. All phases still run inside a single `#[test]` so
//! the measured windows stay serial.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use heardof::core::adversary::{Adversary, FullDelivery, KernelOnly, RandomLoss};
use heardof::core::algorithms::{LastVoting, OneThirdRule, UniformVoting};
use heardof::core::executor::RoundExecutor;
use heardof::core::trace::TraceMode;
use heardof::core::HoAlgorithm;

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Whether allocations on *this* thread are being counted.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

fn tracking() -> bool {
    // `try_with`: the allocator can run during thread teardown, after the
    // thread-local has been destroyed.
    TRACKING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if tracking() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if tracking() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

/// Allocations performed by `f` on the calling thread.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    TRACKING.with(|t| t.set(true));
    f();
    TRACKING.with(|t| t.set(false));
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Warm an executor up, then count allocations over `rounds` further rounds.
fn steady_state_allocs<A: HoAlgorithm<Value = u64>>(
    alg: A,
    values: Vec<u64>,
    mut adversary: impl Adversary,
    mode: TraceMode,
    rounds: u64,
) -> u64 {
    let mut exec = RoundExecutor::with_trace_mode(alg, values, mode);
    exec.run(&mut adversary, 20).expect("warm-up safe");
    allocs_during(|| exec.run(&mut adversary, rounds).expect("steady state safe"))
}

#[test]
fn zero_allocations_per_round_in_steady_state() {
    let n = 8;
    let values: Vec<u64> = (0..n as u64).map(|v| v % 3).collect();

    // The headline claim: a broadcast algorithm at n = 8 under the
    // statistics-only trace — the sweep configuration — allocates nothing
    // per round, under full delivery and under lossy adversaries (whose
    // HO sets churn every round).
    assert_eq!(
        steady_state_allocs(
            OneThirdRule::new(n),
            values.clone(),
            FullDelivery,
            TraceMode::Off,
            300,
        ),
        0,
        "OneThirdRule / FullDelivery / TraceMode::Off"
    );
    assert_eq!(
        steady_state_allocs(
            OneThirdRule::new(n),
            values.clone(),
            RandomLoss::new(0.4, 7),
            TraceMode::Off,
            300,
        ),
        0,
        "OneThirdRule / RandomLoss / TraceMode::Off"
    );
    assert_eq!(
        steady_state_allocs(
            UniformVoting::new(n),
            values.clone(),
            KernelOnly::new(0.8, 3),
            TraceMode::Off,
            300,
        ),
        0,
        "UniformVoting / KernelOnly / TraceMode::Off"
    );

    // A bounded trace window recycles its row buffers: still zero.
    assert_eq!(
        steady_state_allocs(
            OneThirdRule::new(n),
            values.clone(),
            RandomLoss::new(0.4, 7),
            TraceMode::Window(4),
            300,
        ),
        0,
        "OneThirdRule / RandomLoss / TraceMode::Window(4)"
    );

    // LastVoting's point-to-point rounds reuse the destination vector and
    // its broadcast rounds reuse the payload once recipients drop it — but
    // the coordinator's plan alternates shapes (unicast → broadcast) every
    // offset, re-allocating at the transitions. Bounded, not zero: cap it
    // at a small constant per round to pin the behaviour down.
    let lv_allocs = steady_state_allocs(
        LastVoting::new(n),
        values.clone(),
        FullDelivery,
        TraceMode::Off,
        300,
    );
    assert!(
        lv_allocs <= 4 * 300,
        "LastVoting steady state should stay within a small constant \
         per round, got {lv_allocs} over 300 rounds"
    );

    // Contrast: the full trace necessarily allocates (every round appends
    // a retained row). This guards against the Off/Window paths silently
    // degrading into Full.
    let full = steady_state_allocs(
        OneThirdRule::new(n),
        values,
        FullDelivery,
        TraceMode::Full,
        300,
    );
    assert!(
        full > 0,
        "TraceMode::Full retains rows, so it must allocate"
    );
}
