//! Property-based safety tests: no HO assignment whatsoever can make any of
//! the consensus algorithms violate integrity or agreement.
//!
//! This is the HO model's central safety claim (Theorem 1 "never violates
//! the safety properties", and likewise for the [CBS06] algorithms): safety
//! holds under *every* collection of heard-of sets, i.e. under every benign
//! fault pattern — static or dynamic, transient or permanent.

use heardof::core::adversary::Scripted;
use heardof::core::algorithms::{LastVoting, OneThirdRule, UniformVoting};
use heardof::core::executor::{RoundExecutor, RunError};
use heardof::core::process::ProcessSet;
use heardof::core::translation::Translated;
use heardof::core::HoAlgorithm;
use proptest::prelude::*;

/// An arbitrary HO assignment: `rounds × n` process sets.
fn arb_script(n: usize, rounds: usize) -> impl Strategy<Value = Vec<Vec<ProcessSet>>> {
    let mask = (1u128 << n) - 1;
    proptest::collection::vec(proptest::collection::vec(0u128..=mask, n), rounds).prop_map(
        move |rows| {
            rows.into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|bits| {
                            ProcessSet::from_indices((0..n).filter(|i| bits & (1 << i) != 0))
                        })
                        .collect()
                })
                .collect()
        },
    )
}

fn arb_values(n: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..5, n)
}

/// Runs `alg` under the scripted adversary; the executor returns
/// `RunError::Violation` on any safety breach, which fails the property.
fn assert_safe<A: HoAlgorithm<Value = u64>>(
    alg: A,
    values: Vec<u64>,
    script: Vec<Vec<ProcessSet>>,
) -> Result<(), TestCaseError> {
    let rounds = script.len() as u64;
    let mut exec = RoundExecutor::new(alg, values);
    let mut adv = Scripted::new(script);
    match exec.run(&mut adv, rounds) {
        Ok(()) => Ok(()),
        Err(RunError::Violation(v)) => Err(TestCaseError::fail(format!("safety violated: {v}"))),
        Err(other) => Err(TestCaseError::fail(format!("unexpected: {other}"))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn one_third_rule_is_always_safe(
        values in arb_values(4),
        script in arb_script(4, 12),
    ) {
        assert_safe(OneThirdRule::new(4), values, script)?;
    }

    #[test]
    fn one_third_rule_safe_at_larger_n(
        values in arb_values(7),
        script in arb_script(7, 10),
    ) {
        assert_safe(OneThirdRule::new(7), values, script)?;
    }

    /// UniformVoting's safety predicate is `P_nek` (non-empty kernels) —
    /// see the module docs. The script is made kernel-respecting by adding
    /// a rotating pivot that everyone hears.
    #[test]
    fn uniform_voting_is_safe_under_nonempty_kernels(
        values in arb_values(4),
        raw in arb_script(4, 12),
    ) {
        let script: Vec<Vec<ProcessSet>> = raw
            .into_iter()
            .enumerate()
            .map(|(r, row)| {
                let pivot = heardof::core::process::ProcessId::new(r % 4);
                row.into_iter()
                    .map(|ho| ho.union(ProcessSet::singleton(pivot)))
                    .collect()
            })
            .collect();
        assert_safe(UniformVoting::new(4), values, script)?;
    }

    #[test]
    fn last_voting_is_always_safe(
        values in arb_values(4),
        script in arb_script(4, 16),
    ) {
        assert_safe(LastVoting::new(4), values, script)?;
    }

    #[test]
    fn translated_otr_is_always_safe(
        values in arb_values(5),
        script in arb_script(5, 12),
    ) {
        assert_safe(Translated::new(OneThirdRule::new(5), 2), values, script)?;
    }

    #[test]
    fn corrected_translation_is_always_safe(
        values in arb_values(5),
        script in arb_script(5, 12),
    ) {
        assert_safe(Translated::corrected(OneThirdRule::new(5), 2), values, script)?;
    }

    /// Decisions, once taken, survive any further chaos (irrevocability is
    /// checked by the executor each round).
    #[test]
    fn decisions_are_irrevocable_under_chaos(
        script in arb_script(4, 20),
    ) {
        use heardof::core::adversary::FullDelivery;
        let mut exec = RoundExecutor::new(OneThirdRule::new(4), vec![1u64, 1, 1, 1]);
        exec.run_until_all_decided(&mut FullDelivery, 5).unwrap();
        let decided = exec.decisions();
        let rounds = script.len() as u64;
        let mut adv = Scripted::new(script);
        exec.run(&mut adv, rounds).expect("no violation");
        prop_assert_eq!(exec.decisions(), decided);
    }
}
