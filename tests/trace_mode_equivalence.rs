//! Property tests: trace retention modes never change observable results.
//!
//! Across 50 sweep seeds and every algorithm/adversary pairing below, the
//! same scenario is executed three times — under `TraceMode::Full`,
//! `TraceMode::Window(k)` and `TraceMode::Off` — and must produce:
//!
//! * identical decisions and message statistics (retention is pure
//!   observability; the execution must not feel it);
//! * identical running HO statistics (round count, transmission faults,
//!   delivery ratio) in all three modes, including the row-free one;
//! * identical predicate evaluations between the windowed trace's retained
//!   suffix and the same suffix of the full trace — window retention is
//!   exactly "the last `k` rounds of the full record".

use heardof::core::adversary::{Adversary, CrashRecovery, KernelOnly, RandomLoss};
use heardof::core::algorithms::{LastVoting, OneThirdRule, UniformVoting};
use heardof::core::executor::RoundExecutor;
use heardof::core::predicate::{
    MajorityEachRound, NonEmptyKernel, P2Otr, Potr, PotrRestricted, Predicate,
};
use heardof::core::process::ProcessSet;
use heardof::core::round::Round;
use heardof::core::trace::{Trace, TraceMode};
use heardof::core::HoAlgorithm;

const SEEDS: u64 = 50;
const ROUNDS: u64 = 40;
const WINDOW: usize = 8;

fn adversaries(seed: u64) -> Vec<Box<dyn Adversary>> {
    vec![
        Box::new(RandomLoss::new(0.35, seed)),
        Box::new(KernelOnly::new(0.7, seed)),
        Box::new(CrashRecovery::new(
            5,
            &[(seed as usize % 5, Round(2 + seed % 4), Round(5 + seed % 4))],
        )),
    ]
}

fn run<A: HoAlgorithm<Value = u64>>(
    make_alg: impl Fn() -> A,
    adversary: &mut Box<dyn Adversary>,
    mode: TraceMode,
) -> RoundExecutor<A> {
    let n = make_alg().n();
    let values: Vec<u64> = (0..n as u64).map(|v| v % 3).collect();
    let mut exec = RoundExecutor::with_trace_mode(make_alg(), values, mode);
    exec.run(adversary, ROUNDS).expect("safe run");
    exec
}

/// Every predicate the suite evaluates on a (sub-)trace, as a fingerprint.
fn predicate_fingerprint(t: &Trace) -> Vec<bool> {
    let n = t.n();
    let pi0 = ProcessSet::from_indices(0..(2 * n).div_ceil(3) + 1);
    let mut out = vec![
        Potr.holds(t),
        PotrRestricted.holds(t),
        P2Otr::new(ProcessSet::full(n)).holds(t),
        P2Otr::new(pi0).holds(t),
        NonEmptyKernel.holds(t),
        MajorityEachRound.holds(t),
    ];
    for (r, _) in t.iter() {
        out.push(t.is_space_uniform(r, ProcessSet::full(n)));
        out.push(t.kernel(r, ProcessSet::full(n)).is_empty());
    }
    out
}

fn check_modes<A: HoAlgorithm<Value = u64>>(make_alg: impl Fn() -> A + Copy, seed: u64) {
    for (full_adv, (win_adv, off_adv)) in adversaries(seed).iter_mut().zip(
        adversaries(seed)
            .iter_mut()
            .zip(adversaries(seed).iter_mut()),
    ) {
        let full = run(make_alg, full_adv, TraceMode::Full);
        let win = run(make_alg, win_adv, TraceMode::Window(WINDOW));
        let off = run(make_alg, off_adv, TraceMode::Off);

        // Retention is pure observability: decisions and message accounting
        // are identical in all three modes.
        assert_eq!(full.decisions(), win.decisions(), "seed {seed}");
        assert_eq!(full.decisions(), off.decisions(), "seed {seed}");
        assert_eq!(full.message_stats(), win.message_stats(), "seed {seed}");
        assert_eq!(full.message_stats(), off.message_stats(), "seed {seed}");

        // Running HO statistics are exact in every mode.
        for t in [win.trace(), off.trace()] {
            assert_eq!(t.rounds(), full.trace().rounds(), "seed {seed}");
            assert_eq!(
                t.transmission_faults(),
                full.trace().transmission_faults(),
                "seed {seed}"
            );
            assert!(
                (t.delivery_ratio() - full.trace().delivery_ratio()).abs() < 1e-12,
                "seed {seed}"
            );
        }

        // The windowed trace is exactly the last WINDOW rounds of the full
        // record: same rows, same round numbering, and — after renumbering
        // through `retained()` — identical predicate evaluations.
        let wt = win.trace();
        assert_eq!(wt.retained_rounds(), WINDOW as u64, "seed {seed}");
        for (r, row) in wt.iter() {
            assert_eq!(row, full.trace().round(r), "seed {seed} round {r}");
        }
        let suffix_of_full = full
            .trace()
            .restrict(wt.first_retained_round(), Round(full.trace().rounds()));
        assert_eq!(
            predicate_fingerprint(&wt.retained()),
            predicate_fingerprint(&suffix_of_full),
            "seed {seed}: windowed predicate evaluation diverged"
        );
    }
}

#[test]
fn window_equals_full_on_the_retained_suffix_across_sweep_seeds() {
    for seed in 0..SEEDS {
        check_modes(|| OneThirdRule::new(5), seed);
        check_modes(|| UniformVoting::new(5), seed);
        check_modes(|| LastVoting::new(5), seed);
    }
}
