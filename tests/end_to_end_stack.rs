//! End-to-end runs of the complete two-layer architecture (Figure 1):
//! OneThirdRule on top, the predicate implementation layer below, the
//! partially synchronous system at the bottom — across alternating good and
//! bad periods, crashes, recoveries and loss.

use heardof::core::algorithms::OneThirdRule;
use heardof::core::process::{ProcessId, ProcessSet};
use heardof::core::translation::Translated;
use heardof::predicates::alg2::Alg2Program;
use heardof::predicates::alg3::Alg3Program;
use heardof::predicates::bounds::BoundParams;
use heardof::predicates::record::SystemTrace;
use heardof::sim::{BadPeriodConfig, GoodKind, Schedule, SimConfig, Simulator, TimePoint};

#[test]
fn alg2_stack_decides_across_alternating_periods() {
    // bad(30) → good(60) cycles; the first sufficiently long good period
    // produces the decision.
    let n = 4;
    let params = BoundParams::new(n, 1.0, 2.0);
    let pi0 = ProcessSet::full(n);
    let schedule = Schedule::alternating(
        BadPeriodConfig::lossy(0.6),
        30.0,
        60.0,
        2,
        pi0,
        GoodKind::PiDown,
    );
    let cfg = SimConfig::normalized(n, 1.0, 2.0).with_seed(8);
    let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg2Program::new(
                OneThirdRule::new(n),
                ProcessId::new(p),
                10 + p as u64,
                params.alg2_timeout(),
            )
        })
        .collect();
    let mut sim = Simulator::new(cfg, schedule, programs);
    let decided = sim.run_until(TimePoint::new(500.0), |s| {
        s.programs().iter().all(|p| p.decision().is_some())
    });
    assert!(decided, "alternating schedule still reaches consensus");
    let d: Vec<u64> = sim.programs().iter().filter_map(|p| p.decision()).collect();
    assert!(d.windows(2).all(|w| w[0] == w[1]), "agreement: {d:?}");
    assert!(d[0] >= 10 && d[0] < 10 + n as u64, "integrity: {d:?}");
}

#[test]
fn alg2_stack_survives_crashes_with_stable_storage() {
    let n = 4;
    let params = BoundParams::new(n, 1.0, 2.0);
    let pi0 = ProcessSet::full(n);
    let bad = BadPeriodConfig {
        loss: 0.3,
        crash_prob: 0.08,
        min_down: 2.0,
        max_down: 10.0,
        ..BadPeriodConfig::default()
    };
    let schedule = Schedule::bad_then_good(bad, TimePoint::new(100.0), pi0, GoodKind::PiDown);
    let cfg = SimConfig::normalized(n, 1.0, 2.0).with_seed(21);
    let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg2Program::new(
                OneThirdRule::new(n),
                ProcessId::new(p),
                p as u64,
                params.alg2_timeout(),
            )
        })
        .collect();
    let mut sim = Simulator::new(cfg, schedule, programs);
    let decided = sim.run_until(TimePoint::new(400.0), |s| {
        s.programs().iter().all(|p| p.decision().is_some())
    });
    assert!(decided);
    assert!(
        sim.stats().crashes > 0,
        "the bad period should actually crash someone (seed-dependent)"
    );
    let d: Vec<u64> = sim.programs().iter().filter_map(|p| p.decision()).collect();
    assert!(d.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn alg3_stack_with_corrected_translation_decides() {
    // The full paper stack but with the corrected f+2-round translation:
    // decisions still arrive in a π0-arbitrary good period.
    let n = 5;
    let f = 1;
    let params = BoundParams::new(n, 1.0, 2.0);
    let pi0 = ProcessSet::from_indices(0..n - f);
    let schedule = Schedule::bad_then_good(
        BadPeriodConfig::default(),
        TimePoint::new(50.0),
        pi0,
        GoodKind::PiArbitrary,
    );
    let cfg = SimConfig::normalized(n, 1.0, 2.0).with_seed(5);
    let programs: Vec<Alg3Program<Translated<OneThirdRule>>> = (0..n)
        .map(|p| {
            Alg3Program::new(
                Translated::corrected(OneThirdRule::new(n), f),
                ProcessId::new(p),
                p as u64,
                f,
                params.alg3_timeout(),
            )
        })
        .collect();
    let mut sim = Simulator::new(cfg, schedule, programs);
    let decided = sim.run_until(TimePoint::new(2000.0), |s| {
        pi0.iter().all(|p| s.program(p).decision().is_some())
    });
    assert!(decided, "corrected stack decides");
    let d: Vec<u64> = pi0
        .iter()
        .filter_map(|p| sim.program(p).decision())
        .collect();
    assert!(d.windows(2).all(|w| w[0] == w[1]), "agreement: {d:?}");
}

#[test]
fn system_trace_satisfies_model_level_predicates() {
    // Run the Alg-2 stack in an always-good system and check that the
    // *model-level* P_otr^restr predicate holds on the system-level trace —
    // the two layers meet exactly at the communication predicate.
    use heardof::core::predicate::{PotrRestricted, Predicate};

    let n = 4;
    let params = BoundParams::new(n, 1.0, 2.0);
    let pi0 = ProcessSet::full(n);
    let cfg = SimConfig::normalized(n, 1.0, 2.0).with_seed(2);
    let schedule = Schedule::always_good(pi0, GoodKind::PiDown);
    let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg2Program::new(
                OneThirdRule::new(n),
                ProcessId::new(p),
                p as u64,
                params.alg2_timeout(),
            )
        })
        .collect();
    let mut sim = Simulator::new(cfg, schedule, programs);
    let mut st = SystemTrace::new(n);
    sim.run_until(TimePoint::new(300.0), |s| {
        st.observe(s.programs(), s.now().get());
        s.programs().iter().all(|p| p.decision().is_some())
    });
    st.observe(sim.programs(), sim.now().get());
    let trace = st.to_core_trace();
    assert!(
        PotrRestricted.holds(&trace),
        "the system layer delivered the predicate the HO layer needs"
    );
}
