//! Lockstep proof that the calendar-wheel scheduler is bit-identical to
//! the binary-heap oracle.
//!
//! The simulator's event queue has two backends
//! ([`SchedulerKind`](heardof::sim::SchedulerKind)): the original
//! `BinaryHeap`, kept as the equivalence oracle, and the bucketed calendar
//! wheel the engine now defaults to. Both must dispatch the exact same
//! `(time, seq)` sequence — FIFO at equal timestamps included — so every
//! observable of a run must match: per-process received histories,
//! round/decision trajectories, every behavioural counter, *and* the
//! queue-mechanics diagnostics (`events_dispatched`, `peak_queue_depth`)
//! that `SimStats` equality deliberately excludes.
//!
//! (Mirrors `tests/sim_engine_equivalence.rs`: same-seed lockstep runs
//! across the fault-schedule zoo, here extended with an episodic
//! contact-plan entry so link gating is exercised under both backends.)

use heardof::core::algorithms::OneThirdRule;
use heardof::core::contact::ContactPlan;
use heardof::core::process::{ProcessId, ProcessSet};
use heardof::predicates::{Alg2Program, Alg3Program, BoundParams, RoundLog};
use heardof::sim::{
    BadPeriodConfig, DelayTiming, GoodKind, LinkSchedule, Period, PeriodKind, Program, Schedule,
    SchedulerKind, SimConfig, SimStats, Simulator, StepKind, StepTiming, TimePoint, WireMsg,
};
use proptest::prelude::*;

/// The fault-schedule zoo: every period shape the simulator models, plus a
/// scheduled-outage contact plan active over the whole run.
fn schedule_zoo(n: usize) -> Vec<(&'static str, Schedule)> {
    vec![
        (
            "always_good_pi_down",
            Schedule::always_good(ProcessSet::full(n), GoodKind::PiDown),
        ),
        (
            "always_good_pi_arbitrary_subset",
            Schedule::always_good(ProcessSet::from_indices(0..n - 1), GoodKind::PiArbitrary),
        ),
        (
            "lossy_then_good",
            Schedule::bad_then_good(
                BadPeriodConfig::lossy(0.6),
                TimePoint::new(30.0),
                ProcessSet::full(n),
                GoodKind::PiDown,
            ),
        ),
        (
            "crashy_then_good",
            Schedule::bad_then_good(
                BadPeriodConfig::default(),
                TimePoint::new(30.0),
                ProcessSet::full(n),
                GoodKind::PiArbitrary,
            ),
        ),
        (
            "omissive_forever",
            Schedule::new(vec![Period {
                start: TimePoint::ZERO,
                kind: PeriodKind::Bad(BadPeriodConfig::omissive(0.4, 0.3)),
            }]),
        ),
        (
            "episodic_contact_plan",
            Schedule::always_good(ProcessSet::full(n), GoodKind::PiDown).with_link_schedule(
                LinkSchedule::new(
                    ContactPlan::Episodic {
                        dark: 3,
                        bright: 2,
                        cycles: 12,
                    },
                    7,
                    n,
                    2.5,
                ),
            ),
        ),
    ]
}

fn config(n: usize, seed: u64, scheduler: SchedulerKind) -> SimConfig {
    SimConfig::normalized(n, 1.0, 2.0)
        .with_seed(seed)
        .with_step_timing(StepTiming::Jittered)
        .with_delay_timing(DelayTiming::Jittered)
        .with_scheduler(scheduler)
}

/// Full-stats equality: the behavioural counters `SimStats == SimStats`
/// compares, plus the queue diagnostics it excludes. Across *schedulers*
/// (same fan-out mode) everything must match.
fn assert_stats_identical(wheel: &SimStats, heap: &SimStats, ctx: &str) {
    assert_eq!(wheel, heap, "{ctx}: behavioural counters diverged");
    assert_eq!(
        wheel.events_dispatched, heap.events_dispatched,
        "{ctx}: events_dispatched diverged"
    );
    assert_eq!(
        wheel.peak_queue_depth, heap.peak_queue_depth,
        "{ctx}: peak_queue_depth diverged"
    );
}

/// A chatter program recording its full received history (same witness as
/// `tests/sim_engine_equivalence.rs`): any reordering — even of two
/// same-timestamp deliveries — changes a value-dependent selection and
/// cascades into a different history.
#[derive(Clone, Debug, Default)]
struct Recorder {
    sent: u64,
    received: Vec<(ProcessId, u64)>,
    crashes: u64,
    want_send: bool,
}

impl Program for Recorder {
    type Msg = u64;

    fn next_step(&mut self) -> StepKind<u64> {
        self.want_send = !self.want_send;
        if self.want_send {
            self.sent += 1;
            StepKind::send_all(self.sent)
        } else {
            StepKind::Receive
        }
    }

    fn select_message(&mut self, buffer: &[(ProcessId, WireMsg<u64>)]) -> Option<usize> {
        buffer
            .iter()
            .enumerate()
            .max_by_key(|(i, (q, m))| (**m, q.index(), *i))
            .map(|(i, _)| i)
    }

    fn on_receive(&mut self, message: Option<(ProcessId, WireMsg<u64>)>) {
        if let Some((q, m)) = message {
            self.received.push((q, *m));
        }
    }

    fn on_crash(&mut self) {
        self.crashes += 1;
        self.received.clear(); // volatile
    }

    fn on_recover(&mut self) {}
}

fn recorder_run(
    n: usize,
    seed: u64,
    schedule: Schedule,
    scheduler: SchedulerKind,
) -> (Vec<Vec<(ProcessId, u64)>>, SimStats) {
    let mut sim = Simulator::new(
        config(n, seed, scheduler),
        schedule,
        vec![Recorder::default(); n],
    );
    sim.run_for(TimePoint::new(120.0));
    let histories = sim.programs().iter().map(|p| p.received.clone()).collect();
    (histories, sim.stats().clone())
}

#[test]
fn recorder_histories_identical_across_schedulers_50_seeds() {
    let n = 4;
    for (name, _) in schedule_zoo(n) {
        for seed in 0..50 {
            let pick = || {
                schedule_zoo(n)
                    .into_iter()
                    .find(|(s, _)| *s == name)
                    .unwrap()
                    .1
            };
            let (wheel_hist, wheel_stats) = recorder_run(n, seed, pick(), SchedulerKind::Wheel);
            let (heap_hist, heap_stats) = recorder_run(n, seed, pick(), SchedulerKind::Heap);
            assert_eq!(
                wheel_hist, heap_hist,
                "{name}/n{n}/s{seed}: received histories diverged"
            );
            assert_stats_identical(&wheel_stats, &heap_stats, &format!("{name}/n{n}/s{seed}"));
        }
    }
}

#[test]
fn worst_case_timing_floods_the_queue_with_ties_identically() {
    // Under WorstCase step/delay timing every process steps on the same
    // grid and every broadcast lands exactly Δ later: the queue is full of
    // equal-timestamp events and dispatch order is decided purely by the
    // FIFO seq tiebreak. Any deviation from strict FIFO in either backend
    // shows up here.
    let n = 6;
    for seed in 0..10 {
        let run = |scheduler| {
            let mut sim = Simulator::new(
                SimConfig::normalized(n, 1.0, 2.0)
                    .with_seed(seed)
                    .with_scheduler(scheduler),
                Schedule::always_good(ProcessSet::full(n), GoodKind::PiDown),
                vec![Recorder::default(); n],
            );
            sim.run_for(TimePoint::new(150.0));
            let histories: Vec<Vec<(ProcessId, u64)>> =
                sim.programs().iter().map(|p| p.received.clone()).collect();
            (histories, sim.stats().clone())
        };
        let (wheel_hist, wheel_stats) = run(SchedulerKind::Wheel);
        let (heap_hist, heap_stats) = run(SchedulerKind::Heap);
        assert_eq!(wheel_hist, heap_hist, "s{seed}: tie-break order diverged");
        assert_stats_identical(&wheel_stats, &heap_stats, &format!("worst_case/s{seed}"));
    }
}

#[test]
fn alg2_trajectories_identical_across_schedulers() {
    let n = 4;
    let params = BoundParams::new(n, 1.0, 2.0);
    for (name, _) in schedule_zoo(n) {
        for seed in 0..5 {
            let run = |scheduler| {
                let schedule = schedule_zoo(n)
                    .into_iter()
                    .find(|(s, _)| *s == name)
                    .unwrap()
                    .1;
                let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
                    .map(|p| {
                        Alg2Program::new(
                            OneThirdRule::new(n),
                            ProcessId::new(p),
                            p as u64 % 3,
                            params.alg2_timeout(),
                        )
                    })
                    .collect();
                let mut sim = Simulator::new(config(n, seed, scheduler), schedule, programs);
                sim.run_for(TimePoint::new(200.0));
                let per_process: Vec<_> = sim
                    .programs()
                    .iter()
                    .map(|p| {
                        (
                            p.round(),
                            p.decision(),
                            p.crash_count(),
                            p.records().to_vec(),
                        )
                    })
                    .collect();
                (per_process, sim.stats().clone())
            };
            let (wheel, wheel_stats) = run(SchedulerKind::Wheel);
            let (heap, heap_stats) = run(SchedulerKind::Heap);
            assert_eq!(wheel, heap, "{name}/s{seed}: Alg2 trajectories diverged");
            assert_stats_identical(&wheel_stats, &heap_stats, &format!("alg2/{name}/s{seed}"));
        }
    }
}

#[test]
fn alg3_trajectories_identical_across_schedulers() {
    let n = 5;
    let f = 2;
    let params = BoundParams::new(n, 1.0, 2.0);
    for (name, _) in schedule_zoo(n) {
        for seed in 0..5 {
            let run = |scheduler| {
                let schedule = schedule_zoo(n)
                    .into_iter()
                    .find(|(s, _)| *s == name)
                    .unwrap()
                    .1;
                let programs: Vec<Alg3Program<OneThirdRule>> = (0..n)
                    .map(|p| {
                        Alg3Program::new(
                            OneThirdRule::new(n),
                            ProcessId::new(p),
                            p as u64 % 3,
                            f,
                            params.alg3_timeout(),
                        )
                    })
                    .collect();
                let mut sim = Simulator::new(config(n, seed, scheduler), schedule, programs);
                sim.run_for(TimePoint::new(200.0));
                let per_process: Vec<_> = sim
                    .programs()
                    .iter()
                    .map(|p| {
                        (
                            p.round(),
                            p.decision(),
                            p.crash_count(),
                            p.inits_sent(),
                            p.records().to_vec(),
                        )
                    })
                    .collect();
                (per_process, sim.stats().clone())
            };
            let (wheel, wheel_stats) = run(SchedulerKind::Wheel);
            let (heap, heap_stats) = run(SchedulerKind::Heap);
            assert_eq!(wheel, heap, "{name}/s{seed}: Alg3 trajectories diverged");
            assert_stats_identical(&wheel_stats, &heap_stats, &format!("alg3/{name}/s{seed}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized lockstep: arbitrary size, seed, timing mode and zoo
    /// entry — wheel and heap agree on everything observable.
    #[test]
    fn schedulers_agree_on_random_configurations(
        n in 2usize..=6,
        seed in 0u64..1000,
        zoo_idx in 0usize..6,
        jitter in 0u8..4,
        horizon in 40u64..160,
    ) {
        let pick = || schedule_zoo(n)[zoo_idx].1.clone();
        let run = |scheduler| {
            let mut cfg = SimConfig::normalized(n, 1.0, 2.0)
                .with_seed(seed)
                .with_scheduler(scheduler);
            if jitter & 1 != 0 {
                cfg = cfg.with_step_timing(StepTiming::Jittered);
            }
            if jitter & 2 != 0 {
                cfg = cfg.with_delay_timing(DelayTiming::Jittered);
            }
            let mut sim = Simulator::new(cfg, pick(), vec![Recorder::default(); n]);
            sim.run_for(TimePoint::new(horizon as f64));
            let histories: Vec<Vec<(ProcessId, u64)>> =
                sim.programs().iter().map(|p| p.received.clone()).collect();
            (histories, sim.stats().clone())
        };
        let (wheel_hist, wheel_stats) = run(SchedulerKind::Wheel);
        let (heap_hist, heap_stats) = run(SchedulerKind::Heap);
        prop_assert_eq!(wheel_hist, heap_hist, "histories diverged");
        prop_assert_eq!(&wheel_stats, &heap_stats, "stats diverged");
        prop_assert_eq!(
            wheel_stats.events_dispatched, heap_stats.events_dispatched,
            "events_dispatched diverged"
        );
        prop_assert_eq!(
            wheel_stats.peak_queue_depth, heap_stats.peak_queue_depth,
            "peak_queue_depth diverged"
        );
    }
}
