//! The Theorem 8 erratum, as an executable record.
//!
//! Theorem 8 (Appendix C) claims Algorithm 7 translates `P_k(Π0, r1, r1+f)`
//! into `P_su(Π0, R, R)` in `f + 1` rounds for `n > 2f`. Our reproduction
//! found a counterexample family at `n = 2f + 1`: a co-kernel process `s`
//! can reach the `Known` set of exactly one `Π0` member in the *last relay
//! round* (breaking the all-or-nothing step of Lemma C.5), after which the
//! `n − f` voucher threshold is met at `Π0` members that also listen to the
//! co-kernel but missed at members that do not.
//!
//! This file (a) pins the concrete counterexample, (b) shows the corrected
//! `f + 2`-round translation handles it, and (c) property-tests that the
//! corrected translation is space-uniform under *arbitrary* kernel-
//! respecting HO assignments.

use heardof::core::adversary::Scripted;
use heardof::core::algorithms::OneThirdRule;
use heardof::core::executor::RoundExecutor;
use heardof::core::process::{ProcessId, ProcessSet};
use heardof::core::translation::Translated;
use proptest::prelude::*;

fn set(idx: &[usize]) -> ProcessSet {
    ProcessSet::from_indices(idx.iter().copied())
}

/// The minimal counterexample: n = 3, f = 1, Π0 = {1, 2}.
///
/// Both rounds satisfy `P_k(Π0)`; yet under the paper's `f + 1 = 2`-round
/// translation, `NewHO_1 = {0,1,2}` while `NewHO_2 = {1,2}`:
/// `p1` hears `p0` directly (round 1) and counts `p0`'s self-vouch plus its
/// own (2 = n − f vouchers); `p2` never listens to `p0` and sees only one
/// voucher.
fn counterexample_script() -> Vec<Vec<ProcessSet>> {
    vec![
        // round 1: p0 hears {0}; p1 hears all; p2 hears Π0 only.
        vec![set(&[0]), set(&[0, 1, 2]), set(&[1, 2])],
        // round 2: same pattern.
        vec![set(&[0]), set(&[0, 1, 2]), set(&[1, 2])],
    ]
}

#[test]
fn paper_translation_has_a_counterexample_at_n_2f_plus_1() {
    let pi0 = set(&[1, 2]);
    let alg = Translated::new(OneThirdRule::<u64>::new(3), 1);
    assert_eq!(alg.rounds_per_macro(), 2);
    let mut exec = RoundExecutor::new(alg, vec![0, 1, 2]);
    let mut adv = Scripted::new(counterexample_script());
    exec.run(&mut adv, 2).unwrap();
    let news: Vec<ProcessSet> = pi0
        .iter()
        .map(|p| exec.states()[p.index()].last_new_ho.unwrap())
        .collect();
    assert_eq!(news[0], set(&[0, 1, 2]), "p1 counts p0");
    assert_eq!(news[1], set(&[1, 2]), "p2 does not");
    assert_ne!(news[0], news[1], "macro-round is NOT space uniform");
}

#[test]
fn corrected_translation_handles_the_counterexample() {
    let pi0 = set(&[1, 2]);
    let alg = Translated::corrected(OneThirdRule::<u64>::new(3), 1);
    assert_eq!(alg.rounds_per_macro(), 3);
    let mut exec = RoundExecutor::new(alg, vec![0, 1, 2]);
    // Extend the adversarial pattern over the 3 rounds of the macro-round.
    let round = vec![set(&[0]), set(&[0, 1, 2]), set(&[1, 2])];
    let mut adv = Scripted::new(vec![round.clone(), round.clone(), round]);
    exec.run(&mut adv, 3).unwrap();
    let news: Vec<ProcessSet> = pi0
        .iter()
        .map(|p| exec.states()[p.index()].last_new_ho.unwrap())
        .collect();
    assert_eq!(news[0], news[1], "corrected macro-round is space uniform");
    assert!(news[0].is_superset(pi0));
}

/// An arbitrary HO script in which every round satisfies `P_k(Π0)`:
/// processes in Π0 hear at least Π0; everything else is adversarial.
fn arb_kernel_script(
    n: usize,
    f: usize,
    rounds: usize,
) -> impl Strategy<Value = Vec<Vec<ProcessSet>>> {
    let mask = (1u128 << n) - 1;
    let pi0 = ProcessSet::from_indices(f..n);
    proptest::collection::vec(proptest::collection::vec(0u128..=mask, n), rounds).prop_map(
        move |rows| {
            rows.into_iter()
                .map(|row| {
                    row.into_iter()
                        .enumerate()
                        .map(|(p, bits)| {
                            let noisy =
                                ProcessSet::from_indices((0..n).filter(|i| bits & (1 << i) != 0));
                            if pi0.contains(ProcessId::new(p)) {
                                pi0.union(noisy)
                            } else {
                                noisy
                            }
                        })
                        .collect()
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Theorem 8, with the corrected round count: under arbitrary kernel-
    /// respecting assignments, every completed macro-round is space uniform
    /// over Π0 and contains Π0 — for the tight case n = 2f + 1.
    #[test]
    fn corrected_translation_is_space_uniform_n3(
        script in arb_kernel_script(3, 1, 9),
    ) {
        check_uniform(3, 1, script)?;
    }

    #[test]
    fn corrected_translation_is_space_uniform_n5(
        script in arb_kernel_script(5, 2, 12),
    ) {
        check_uniform(5, 2, script)?;
    }

    #[test]
    fn corrected_translation_is_space_uniform_n7(
        script in arb_kernel_script(7, 3, 10),
    ) {
        check_uniform(7, 3, script)?;
    }
}

fn check_uniform(n: usize, f: usize, script: Vec<Vec<ProcessSet>>) -> Result<(), TestCaseError> {
    let pi0 = ProcessSet::from_indices(f..n);
    let alg = Translated::corrected(OneThirdRule::<u64>::new(n), f);
    let per = alg.rounds_per_macro();
    let rounds = script.len() as u64;
    let mut exec = RoundExecutor::new(alg, (0..n as u64).collect());
    let mut adv = Scripted::new(script);
    for m in 1..=rounds {
        exec.step(&mut adv)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        if m % per != 0 {
            continue;
        }
        let news: Vec<ProcessSet> = pi0
            .iter()
            .filter_map(|p| exec.states()[p.index()].last_new_ho)
            .collect();
        prop_assert_eq!(news.len(), pi0.len());
        let first = news[0];
        prop_assert!(
            news.iter().all(|s| *s == first),
            "macro-round at micro {} not uniform: {:?}",
            m,
            news
        );
        prop_assert!(first.is_superset(pi0), "NewHO must contain Π0");
    }
    Ok(())
}
