//! Property: a recipient holding a pooled payload across rounds never
//! observes any generation (or value) other than the one it received.
//!
//! The pool's safety argument is that a slot is rewritten only when its
//! reference count proves no recipient still holds the old generation.
//! This suite drives a sender's [`PlanSlot`] for hundreds of rounds under
//! random drop/hold patterns — recipients grab handles and keep them for
//! random numbers of rounds — and checks, every round, that every held
//! handle still reads back its original value and generation. (Reading
//! through a handle also debug-asserts the slot's generation matches, so a
//! rewrite-while-held would panic before the equality check even ran.)

use heardof::core::pool::{PayloadPool, PooledPayload};
use heardof::core::send_plan::{PlanSlot, PlanSpares, SendPlan};
use proptest::prelude::*;

/// One recipient's held handle with the facts it must keep observing.
struct Held {
    handle: PooledPayload<Vec<u64>>,
    value: Vec<u64>,
    generation: u64,
    release_round: u64,
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn run_drop_hold_pattern(seed: u64, rounds: u64) {
    let mut rng = seed | 1;
    let mut plan: SendPlan<Vec<u64>> = SendPlan::Silent;
    let mut spares = PlanSpares::default();
    let mut pool = PayloadPool::new();
    let mut held: Vec<Held> = Vec::new();

    for r in 0..rounds {
        // The sender broadcasts this round's payload through the slot —
        // rewriting a drained slot in place whenever one is available.
        let payload = vec![r, r.wrapping_mul(0x9E37_79B9), seed];
        let expected = payload.clone();
        PlanSlot::new(&mut plan, &mut spares, &mut pool).broadcast(payload);
        let handle = plan
            .broadcast_handle()
            .expect("broadcast plan has a handle")
            .clone();
        assert_eq!(*handle, expected, "round {r}: fresh handle reads back");

        // A random subset of recipients holds the payload for a random
        // number of future rounds (0..=7) — some drop immediately, some
        // hold long past several rewrites of the sender's other slots.
        let holders = xorshift(&mut rng) % 3;
        for _ in 0..holders {
            let hold_for = xorshift(&mut rng) % 8;
            held.push(Held {
                handle: handle.clone(),
                value: expected.clone(),
                generation: handle.generation(),
                release_round: r + hold_for,
            });
        }

        // Every held handle must still observe exactly what it received —
        // regardless of how many times the sender recycled *other* slots
        // in between. The deref itself debug-asserts the slot generation.
        for h in &held {
            assert_eq!(
                h.handle.generation(),
                h.generation,
                "round {r}: a held handle's generation changed"
            );
            assert_eq!(
                *h.handle, h.value,
                "round {r}: a held handle's value changed"
            );
        }

        // Random drop pattern: release the handles whose time is up.
        held.retain(|h| h.release_round > r);
    }

    // With bounded hold times the pool must have started recycling: if
    // every round allocated fresh, the property above would be vacuous.
    if rounds > 64 {
        let mut probe_plan: SendPlan<Vec<u64>> = std::mem::replace(&mut plan, SendPlan::Silent);
        drop(held);
        // All handles released: the current slot must now rewrite in place.
        if let SendPlan::Broadcast(h) = &mut probe_plan {
            assert!(
                h.try_rewrite(|v| v.clear()),
                "all recipients released, slot must be unique"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    /// 50 seeds of random drop/hold patterns over 200 rounds each.
    #[test]
    fn held_handles_never_observe_another_generation(seed in 1u64..u64::MAX) {
        run_drop_hold_pattern(seed, 200);
    }
}

#[test]
fn reuse_actually_happens_under_bounded_holds() {
    // Deterministic companion: with all handles dropped immediately, every
    // round after the first rewrites the same slot — generations climb on
    // one allocation.
    let mut plan: SendPlan<u64> = SendPlan::Silent;
    let mut spares = PlanSpares::default();
    let mut pool = PayloadPool::new();
    PlanSlot::new(&mut plan, &mut spares, &mut pool).broadcast(0);
    let first_ptr = plan.broadcast_handle().unwrap().as_ptr();
    for r in 1..50u64 {
        let reused = PlanSlot::new(&mut plan, &mut spares, &mut pool).broadcast(r);
        assert_eq!(reused, 1, "round {r} rewrites in place");
    }
    let handle = plan.broadcast_handle().unwrap();
    assert_eq!(handle.as_ptr(), first_ptr, "one allocation for 50 rounds");
    assert_eq!(handle.generation(), 49);
    assert_eq!(**handle, 49);
}
