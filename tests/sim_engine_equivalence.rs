//! Equivalence proof for the simulator's pooled-plan message path.
//!
//! The engine used to fan a broadcast out by deep-cloning the wire message
//! per destination; it now fans out one pooled payload by reference count.
//! The old scheme survives only as the `clone_fanout` oracle
//! ([`SimConfig::with_clone_fanout`]). This suite runs both modes in
//! lockstep across the fault-schedule zoo and asserts **identical**
//! behaviour: delivered message sequences, per-process received histories,
//! round/decision trajectories, and every engine counter. The only thing
//! allowed to differ is the allocation economy — which is the whole point.
//!
//! (Mirrors the style of `tests/monitor_equivalence.rs`: same-seed lockstep
//! runs, equality on everything observable.)

use heardof::core::algorithms::OneThirdRule;
use heardof::core::process::{ProcessId, ProcessSet};
use heardof::predicates::{Alg2Program, Alg3Program, BoundParams, RoundLog};
use heardof::sim::{
    BadPeriodConfig, DelayTiming, GoodKind, Period, PeriodKind, Program, Schedule, SimConfig,
    Simulator, StepKind, StepTiming, TimePoint, WireMsg,
};

/// The fault-schedule zoo: every period shape the simulator models.
fn schedule_zoo(n: usize) -> Vec<(&'static str, Schedule)> {
    vec![
        (
            "always_good_pi_down",
            Schedule::always_good(ProcessSet::full(n), GoodKind::PiDown),
        ),
        (
            "always_good_pi_arbitrary_subset",
            Schedule::always_good(ProcessSet::from_indices(0..n - 1), GoodKind::PiArbitrary),
        ),
        (
            "lossy_then_good",
            Schedule::bad_then_good(
                BadPeriodConfig::lossy(0.6),
                TimePoint::new(30.0),
                ProcessSet::full(n),
                GoodKind::PiDown,
            ),
        ),
        (
            "crashy_then_good",
            Schedule::bad_then_good(
                BadPeriodConfig::default(),
                TimePoint::new(30.0),
                ProcessSet::full(n),
                GoodKind::PiArbitrary,
            ),
        ),
        (
            "omissive_forever",
            Schedule::new(vec![Period {
                start: TimePoint::ZERO,
                kind: PeriodKind::Bad(BadPeriodConfig::omissive(0.4, 0.3)),
            }]),
        ),
    ]
}

fn config(n: usize, seed: u64, clone_fanout: bool) -> SimConfig {
    SimConfig::normalized(n, 1.0, 2.0)
        .with_seed(seed)
        .with_step_timing(StepTiming::Jittered)
        .with_delay_timing(DelayTiming::Jittered)
        .with_clone_fanout(clone_fanout)
}

/// A chatter program that records its full received history — the raw
/// "delivered message sequences and received histories" witness.
#[derive(Clone, Debug, Default)]
struct Recorder {
    sent: u64,
    received: Vec<(ProcessId, u64)>,
    crashes: u64,
    want_send: bool,
}

impl Program for Recorder {
    type Msg = u64;

    fn next_step(&mut self) -> StepKind<u64> {
        self.want_send = !self.want_send;
        if self.want_send {
            self.sent += 1;
            StepKind::send_all(self.sent)
        } else {
            StepKind::Receive
        }
    }

    fn select_message(&mut self, buffer: &[(ProcessId, WireMsg<u64>)]) -> Option<usize> {
        // A value-dependent policy: any payload corruption (a recycled slot
        // read through a stale handle) would change the selection and
        // cascade into a different history.
        buffer
            .iter()
            .enumerate()
            .max_by_key(|(i, (q, m))| (**m, q.index(), *i))
            .map(|(i, _)| i)
    }

    fn on_receive(&mut self, message: Option<(ProcessId, WireMsg<u64>)>) {
        if let Some((q, m)) = message {
            self.received.push((q, *m));
        }
    }

    fn on_crash(&mut self) {
        self.crashes += 1;
        self.received.clear(); // volatile
    }

    fn on_recover(&mut self) {}
}

#[test]
fn recorder_histories_identical_across_fanout_modes() {
    for n in [2, 5] {
        for (name, _) in schedule_zoo(n) {
            for seed in 0..6 {
                let run = |clone_fanout: bool| {
                    let schedule = schedule_zoo(n)
                        .into_iter()
                        .find(|(s, _)| *s == name)
                        .unwrap()
                        .1;
                    let mut sim = Simulator::new(
                        config(n, seed, clone_fanout),
                        schedule,
                        vec![Recorder::default(); n],
                    );
                    sim.run_for(TimePoint::new(120.0));
                    let histories: Vec<Vec<(ProcessId, u64)>> =
                        sim.programs().iter().map(|p| p.received.clone()).collect();
                    (histories, sim.stats().clone())
                };
                let (pooled_hist, pooled_stats) = run(false);
                let (cloned_hist, cloned_stats) = run(true);
                assert_eq!(
                    pooled_hist, cloned_hist,
                    "{name}/n{n}/s{seed}: received histories diverged"
                );
                // Every engine counter — steps, transmissions, drops,
                // deliveries, crashes — must match exactly.
                assert_eq!(
                    pooled_stats, cloned_stats,
                    "{name}/n{n}/s{seed}: stats diverged"
                );
            }
        }
    }
}

#[test]
fn alg2_behaviour_identical_across_fanout_modes() {
    let n = 4;
    let params = BoundParams::new(n, 1.0, 2.0);
    for (name, _) in schedule_zoo(n) {
        for seed in 0..5 {
            let run = |clone_fanout: bool| {
                let schedule = schedule_zoo(n)
                    .into_iter()
                    .find(|(s, _)| *s == name)
                    .unwrap()
                    .1;
                let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
                    .map(|p| {
                        Alg2Program::new(
                            OneThirdRule::new(n),
                            ProcessId::new(p),
                            p as u64 % 3,
                            params.alg2_timeout(),
                        )
                    })
                    .collect();
                let mut sim = Simulator::new(config(n, seed, clone_fanout), schedule, programs);
                sim.run_for(TimePoint::new(200.0));
                let per_process: Vec<_> = sim
                    .programs()
                    .iter()
                    .map(|p| {
                        (
                            p.round(),
                            p.decision(),
                            p.crash_count(),
                            p.records().to_vec(),
                        )
                    })
                    .collect();
                (per_process, sim.stats().clone())
            };
            let (pooled, pooled_stats) = run(false);
            let (cloned, cloned_stats) = run(true);
            assert_eq!(pooled, cloned, "{name}/s{seed}: Alg2 trajectories diverged");
            assert_eq!(pooled_stats, cloned_stats, "{name}/s{seed}: stats diverged");
        }
    }
}

#[test]
fn alg3_behaviour_identical_across_fanout_modes() {
    let n = 5;
    let f = 2;
    let params = BoundParams::new(n, 1.0, 2.0);
    for (name, _) in schedule_zoo(n) {
        for seed in 0..5 {
            let run = |clone_fanout: bool| {
                let schedule = schedule_zoo(n)
                    .into_iter()
                    .find(|(s, _)| *s == name)
                    .unwrap()
                    .1;
                let programs: Vec<Alg3Program<OneThirdRule>> = (0..n)
                    .map(|p| {
                        Alg3Program::new(
                            OneThirdRule::new(n),
                            ProcessId::new(p),
                            p as u64 % 3,
                            f,
                            params.alg3_timeout(),
                        )
                    })
                    .collect();
                let mut sim = Simulator::new(config(n, seed, clone_fanout), schedule, programs);
                sim.run_for(TimePoint::new(200.0));
                let per_process: Vec<_> = sim
                    .programs()
                    .iter()
                    .map(|p| {
                        (
                            p.round(),
                            p.decision(),
                            p.crash_count(),
                            p.inits_sent(),
                            p.records().to_vec(),
                        )
                    })
                    .collect();
                (per_process, sim.stats().clone())
            };
            let (pooled, pooled_stats) = run(false);
            let (cloned, cloned_stats) = run(true);
            assert_eq!(pooled, cloned, "{name}/s{seed}: Alg3 trajectories diverged");
            assert_eq!(pooled_stats, cloned_stats, "{name}/s{seed}: stats diverged");
        }
    }
}

#[test]
fn pooled_mode_shares_payload_allocations() {
    // Sanity check that the two modes really differ where they should: in
    // pooled mode the recipients of one broadcast alias one payload slot.
    // (If this failed, the equivalence above would be proving "clone ==
    // clone" — vacuous.)
    let n = 4;
    let params = BoundParams::new(n, 1.0, 2.0);
    let programs: Vec<Alg2Program<OneThirdRule>> = (0..n)
        .map(|p| {
            Alg2Program::new(
                OneThirdRule::new(n),
                ProcessId::new(p),
                1u64,
                params.alg2_timeout(),
            )
        })
        .collect();
    let schedule = Schedule::always_good(ProcessSet::full(n), GoodKind::PiDown);
    let mut sim = Simulator::new(config(n, 3, false), schedule, programs);
    sim.run_for(TimePoint::new(100.0));
    let stats = sim.message_stats();
    assert!(
        stats.payload_reuses > 0,
        "steady-state sends must land in recycled pool slots: {stats:?}"
    );
}
