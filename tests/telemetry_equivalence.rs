//! Lockstep proof that telemetry is observation-only: a run with the
//! flight recorder and metrics registry on is bit-identical to the same
//! run with them off, on both execution layers.
//!
//! The recorder's contract mirrors `RoundObserver`'s: inactive costs one
//! branch, and *active costs no behaviour* — it reads the round state,
//! never steers it. Each grid below runs twice, telemetry off and on,
//! across 50 seeds × the fault-schedule zoo, and every verdict must match
//! after stripping only the fields telemetry *adds* (the digest, the
//! forensic ring, wall-clock time): decisions, rounds, violations,
//! message accounting, predicate windows, log contents — everything the
//! run computes — byte for byte.
//!
//! (Mirrors `tests/scheduler_equivalence.rs`, which proves the same
//! non-interference property for the event-queue backends.)

use heardof::harness::{
    AdversarySpec, AlgorithmSpec, ImplementationSpec, LinkFaultSpec, RsmSweep, RsmVerdict,
    SimSweep, SimVerdict, Sweep, Verdict, WorkloadSpec,
};

/// The model-layer fault zoo: every adversary shape the harness sweeps,
/// including the ones that *violate* (UniformVoting outside `P_nek`), so
/// the forensic-capture path is exercised under comparison too.
fn model_sweeps() -> Vec<Sweep> {
    vec![
        Sweep::new()
            .algorithms([AlgorithmSpec::OneThirdRule, AlgorithmSpec::LastVoting])
            .adversaries([
                AdversarySpec::FullDelivery,
                AdversarySpec::RandomLoss { loss: 0.4 },
                AdversarySpec::Partition { blocks: 2 },
                AdversarySpec::CrashRecovery,
                AdversarySpec::KernelOnly { loss: 0.8 },
                AdversarySpec::EventuallyGood {
                    bad_rounds: 6,
                    loss: 0.5,
                },
            ])
            .sizes([4])
            .seeds(0..50)
            .max_rounds(60),
        // The violating cells: agreement breaks, the ring drains into
        // forensic events — and the verdict still matches the off run.
        Sweep::new()
            .algorithms([AlgorithmSpec::UniformVoting])
            .adversaries([
                AdversarySpec::RandomLoss { loss: 0.4 },
                AdversarySpec::Partition { blocks: 2 },
            ])
            .sizes([4])
            .seeds(0..50)
            .max_rounds(60),
    ]
}

/// A model verdict with the telemetry-added fields stripped — the
/// comparison key. Wall clock is the only other nondeterministic field.
fn model_key(mut v: Verdict) -> String {
    v.wall_nanos = 0;
    v.telemetry = None;
    v.forensic_events = None;
    format!("{v:?}")
}

fn sim_key(mut v: SimVerdict) -> String {
    v.wall_nanos = 0;
    v.events_per_sec = 0.0;
    v.telemetry = None;
    v.forensic_events = None;
    format!("{v:?}")
}

fn rsm_key(mut v: RsmVerdict) -> String {
    v.wall_nanos = 0;
    v.telemetry = None;
    v.forensic_events = None;
    format!("{v:?}")
}

#[test]
fn model_layer_verdicts_identical_with_recorder_on_50_seeds() {
    for sweep in model_sweeps() {
        let off = sweep.clone().telemetry(false).run();
        let on = sweep.telemetry(true).run();
        assert_eq!(off.scenarios, on.scenarios);
        for (o, t) in off.verdicts.iter().zip(&on.verdicts) {
            assert!(
                o.telemetry.is_none(),
                "{}: off run carries a digest",
                o.id()
            );
            let digest = t.telemetry.expect("telemetry-on verdicts carry a digest");
            assert!(
                digest.events_recorded > 0,
                "{}: the recorder was live",
                t.id()
            );
            if t.violation.is_some() {
                assert!(
                    t.forensic_events.as_ref().is_some_and(|e| !e.is_empty()),
                    "{}: a violating telemetry-on run drains its ring",
                    t.id()
                );
            } else {
                assert!(t.forensic_events.is_none());
            }
            assert_eq!(
                model_key(o.clone()),
                model_key(t.clone()),
                "{}: recorder changed the verdict",
                o.id()
            );
        }
        // The violating grid really violates — the comparison above
        // covered the forensic path, not just clean runs.
        if on.verdicts.iter().any(|v| v.algorithm == "uniform_voting") {
            assert!(on.violations > 0, "UV outside P_nek must violate");
        }
    }
}

#[test]
fn sim_layer_verdicts_identical_with_recorder_on_50_seeds() {
    let sweep = SimSweep::new()
        .implementations([ImplementationSpec::Alg2, ImplementationSpec::Alg3 { f: 1 }])
        .faults([
            LinkFaultSpec::GoodFromStart,
            LinkFaultSpec::LossyThenGood {
                bad_len: 40.0,
                loss: 0.5,
            },
            LinkFaultSpec::CrashyThenGood { bad_len: 40.0 },
            LinkFaultSpec::OmissiveThenGood {
                bad_len: 40.0,
                send: 0.3,
                recv: 0.3,
            },
        ])
        .sizes([4])
        .seeds(0..50)
        .window(2);
    let off = sweep.clone().telemetry(false).run();
    let on = sweep.telemetry(true).run();
    assert_eq!(off.scenarios, on.scenarios);
    assert!(off.scenarios >= 2 * 4 * 50, "the whole zoo ran");
    for (o, t) in off.verdicts.iter().zip(&on.verdicts) {
        assert!(o.telemetry.is_none());
        let digest = t.telemetry.expect("telemetry-on verdicts carry a digest");
        assert!(
            digest.events_recorded > 0,
            "{}: the engine recorded dispatches",
            t.id()
        );
        assert_eq!(
            sim_key(o.clone()),
            sim_key(t.clone()),
            "{}: recorder changed the verdict",
            o.id()
        );
    }
}

#[test]
fn rsm_layer_verdicts_identical_with_recorder_on() {
    // The service layer on top: pipelined log, flow control on and off,
    // lossy delivery. Shorter seed range — each scenario runs a whole
    // service history — but the same byte-for-byte contract.
    let sweep = RsmSweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule])
        .adversaries([
            AdversarySpec::FullDelivery,
            AdversarySpec::RandomLoss { loss: 0.25 },
        ])
        .sizes([4])
        .depths([4])
        .workloads([WorkloadSpec::FixedRate { per_round: 2 }])
        .leases([false, true])
        .seeds(0..10)
        .rounds(120);
    let off = sweep.clone().telemetry(false).run();
    let on = sweep.telemetry(true).run();
    assert_eq!(off.scenarios, on.scenarios);
    for (o, t) in off.verdicts.iter().zip(&on.verdicts) {
        assert!(o.telemetry.is_none());
        assert!(
            t.telemetry.is_some(),
            "{}: telemetry-on rsm verdicts carry a digest",
            t.id()
        );
        assert_eq!(
            rsm_key(o.clone()),
            rsm_key(t.clone()),
            "{}: recorder changed the verdict",
            o.id()
        );
    }
}
