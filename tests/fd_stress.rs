//! Stress tests for the failure-detector baselines: larger memberships,
//! multiple faults, repeated recoveries, and noisy pre-GST detectors.

use heardof::fd::harness::{run_aguilera, run_chandra_toueg, FdScenario};
use heardof::fd::{FdNet, NetConfig, Outage};
use ho_core::process::ProcessId;

#[test]
fn ct_survives_two_minority_crashes_in_five() {
    let mut sc = FdScenario::failure_free(5, 3);
    sc.gst = 5.0;
    sc.outages = vec![
        Outage {
            process: ProcessId::new(0),
            down_at: 0.05,
            up_at: None,
        },
        Outage {
            process: ProcessId::new(1),
            down_at: 2.0,
            up_at: None,
        },
    ];
    let out = run_chandra_toueg(&sc);
    for p in 2..5 {
        assert!(out.decisions[p].is_some(), "survivor p{p} decides: {out:?}");
    }
    assert!(out.agreement());
}

#[test]
fn aguilera_survives_repeated_recoveries_of_the_same_process() {
    let mut sc = FdScenario::failure_free(3, 5);
    sc.gst = 5.0;
    sc.deadline = 10_000.0;
    sc.outages = vec![
        Outage {
            process: ProcessId::new(2),
            down_at: 0.3,
            up_at: Some(10.0),
        },
        Outage {
            process: ProcessId::new(2),
            down_at: 12.0,
            up_at: Some(25.0),
        },
        Outage {
            process: ProcessId::new(2),
            down_at: 27.0,
            up_at: Some(40.0),
        },
    ];
    let out = run_aguilera(&sc);
    assert_eq!(out.decided_count(), 3, "{out:?}");
    assert!(out.agreement());
}

#[test]
fn aguilera_survives_overlapping_outages_of_different_processes() {
    // At most a minority down at any instant, but every process except p0
    // crashes at some point.
    let mut sc = FdScenario::failure_free(5, 7);
    sc.gst = 5.0;
    sc.deadline = 10_000.0;
    sc.outages = vec![
        Outage {
            process: ProcessId::new(1),
            down_at: 0.5,
            up_at: Some(20.0),
        },
        Outage {
            process: ProcessId::new(2),
            down_at: 5.0,
            up_at: Some(30.0),
        },
        Outage {
            process: ProcessId::new(3),
            down_at: 25.0,
            up_at: Some(45.0),
        },
        Outage {
            process: ProcessId::new(4),
            down_at: 40.0,
            up_at: Some(60.0),
        },
    ];
    let out = run_aguilera(&sc);
    assert_eq!(out.decided_count(), 5, "{out:?}");
    assert!(out.agreement());
}

#[test]
fn late_gst_with_noisy_detector_only_delays_ct() {
    // Heavy pre-GST noise: wrong suspicions force many nack'd rounds; after
    // GST a correct coordinator finally gets a clean round.
    let mut sc = FdScenario::failure_free(4, 9);
    sc.gst = 100.0;
    sc.deadline = 5_000.0;
    let out = run_chandra_toueg(&sc);
    assert_eq!(out.decided_count(), 4, "{out:?}");
    assert!(out.agreement());
}

#[test]
fn decisions_agree_across_seeds_and_scenarios() {
    // Integrity + agreement across a seed sweep of mixed scenarios.
    for seed in 0..8 {
        for sc in [
            FdScenario::failure_free(3, seed),
            FdScenario::one_crash(3, (seed % 3) as usize, seed),
            FdScenario::lossy(3, 0.15, seed),
        ] {
            let ag = run_aguilera(&sc);
            assert!(ag.agreement(), "aguilera seed {seed}: {ag:?}");
            for d in ag.decisions.iter().flatten() {
                assert!((10..13).contains(d), "integrity: {d}");
            }
            let ct = run_chandra_toueg(&sc);
            assert!(ct.agreement(), "ct seed {seed}: {ct:?}");
            for d in ct.decisions.iter().flatten() {
                assert!((10..13).contains(d), "integrity: {d}");
            }
        }
    }
}

#[test]
fn message_counts_scale_with_membership() {
    // Sanity: the asynchronous layer's message accounting is consistent and
    // grows with n in failure-free runs.
    let small = run_aguilera(&FdScenario::failure_free(3, 2));
    let large = run_aguilera(&FdScenario::failure_free(7, 2));
    assert!(large.messages_sent > small.messages_sent);
    assert!(small.messages_delivered <= small.messages_sent);
    assert!(large.messages_delivered <= large.messages_sent);
}

#[test]
fn fdnet_direct_usage_with_custom_processes() {
    // The FdNet API is usable for custom protocols, not just the two
    // baselines: a one-shot flooding counter.
    use heardof::fd::{Ctx, FdProcess};

    #[derive(Clone, Default)]
    struct Flood {
        seen: u64,
    }
    impl FdProcess for Flood {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.send_all(1);
        }
        fn on_message(&mut self, _f: ProcessId, m: u64, ctx: &mut Ctx<'_, u64>) {
            self.seen += 1;
            // Relay each value once, up to a small bound.
            if m < 3 {
                ctx.send_all(m + 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>) {}
        fn on_crash(&mut self) {}
        fn on_recover(&mut self, _ctx: &mut Ctx<'_, u64>) {}
        fn decision(&self) -> Option<u64> {
            None
        }
    }

    let cfg = NetConfig::new(3, 0.0).with_seed(4);
    let mut net = FdNet::new(cfg, vec![Flood::default(); 3], &[]);
    net.run_until(100.0, |_| false);
    // Waves: 3 processes × 3 generations × 3 destinations = 27 receptions
    // per process... bounded, and identical across processes.
    let seen: Vec<u64> = net.processes().iter().map(|p| p.seen).collect();
    assert!(seen.iter().all(|s| *s == seen[0] && *s > 0), "{seen:?}");
}
