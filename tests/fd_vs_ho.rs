//! Integration: the failure-detector baselines against the HO approach —
//! the paper's §1 criticisms as executable assertions.

use heardof::core::adversary::{CrashRecovery, CrashStop, RandomLoss};
use heardof::core::algorithms::OneThirdRule;
use heardof::core::executor::RoundExecutor;
use heardof::core::process::ProcessSet;
use heardof::core::round::Round;
use heardof::fd::harness::{run_aguilera, run_chandra_toueg, FdScenario};

#[test]
fn criticism_1_ct_blocks_under_loss_ho_does_not() {
    // FD algorithms require reliable links; the HO algorithm treats loss as
    // ordinary transmission faults.
    let mut ct_blocked = false;
    for seed in 0..5 {
        let out = run_chandra_toueg(&FdScenario::lossy(3, 0.35, seed));
        ct_blocked |= out.decided_count() < 3;
    }
    assert!(
        ct_blocked,
        "CT should block in at least one of 5 lossy runs"
    );

    for seed in 0..5 {
        let mut adv = RandomLoss::new(0.35, seed);
        let mut exec = RoundExecutor::new(OneThirdRule::new(3), vec![1, 2, 3]);
        let r = exec
            .run_until_all_decided(&mut adv, 500)
            .expect("OTR decides under the same loss");
        assert!(r.get() < 500);
    }
}

#[test]
fn criticism_2_crash_recovery_gap() {
    // The same fault pattern: p1 crashes and recovers.
    // CT (crash-stop) loses the recovered process forever; Aguilera needs
    // stable storage + retransmission; OTR needs nothing.
    let sc = FdScenario::crash_recovery(3, 1, 0.4, 30.0, 3);

    let ct = run_chandra_toueg(&sc);
    assert!(
        ct.decisions[1].is_none(),
        "CT has no recovery protocol; the recovered process stays lost"
    );

    let ag = run_aguilera(&sc);
    assert_eq!(ag.decided_count(), 3, "Aguilera recovers p1: {ag:?}");
    assert!(
        ag.stable_writes > 0,
        "…but only by paying for stable storage"
    );

    let mut adv = CrashRecovery::new(3, &[(1, Round(2), Round(6))]);
    let mut exec = RoundExecutor::new(OneThirdRule::new(3), vec![10, 11, 12]);
    let r = exec
        .run_until_all_decided(&mut adv, 50)
        .expect("OTR, unchanged, decides in the crash-recovery model");
    assert!(r >= Round(7), "p1 decides after its outage ends");
}

#[test]
fn both_models_handle_crash_stop() {
    // Crash-stop (the SP class) is the one case the FD model was made for:
    // both approaches cope.
    let sc = FdScenario::one_crash(3, 0, 7);
    let ct = run_chandra_toueg(&sc);
    assert!(ct.decisions[1].is_some() && ct.decisions[2].is_some());
    assert!(ct.agreement());

    let mut adv = CrashStop::new(4, &[(3, Round(1))]);
    let mut exec = RoundExecutor::new(OneThirdRule::new(4), vec![5, 6, 7, 8]);
    let scope = ProcessSet::from_indices(0..3);
    exec.run_until_decided_in(scope, &mut adv, 30)
        .expect("survivors decide");
}

#[test]
fn message_cost_comparison_failure_free() {
    // Shape check: in a failure-free run, Aguilera's retransmission task
    // sends strictly more messages than CT, and both terminate.
    let sc = FdScenario::failure_free(3, 11);
    let ct = run_chandra_toueg(&sc);
    let ag = run_aguilera(&sc);
    assert_eq!(ct.decided_count(), 3);
    assert_eq!(ag.decided_count(), 3);
    assert!(
        ag.messages_sent > ct.messages_sent,
        "retransmission overhead: ag={} ct={}",
        ag.messages_sent,
        ct.messages_sent
    );
    assert_eq!(ct.stable_writes, 0);
    assert!(ag.stable_writes > 0);
}

#[test]
fn ho_is_identical_code_across_fault_classes() {
    // One binary decision procedure, four fault classes (SP, ST, DP→n/a
    // benign, DT): the exact same OneThirdRule instance decides under all.
    type Run = Box<dyn FnMut() -> Option<Round>>;
    let runs: Vec<(&str, Run)> = vec![
        (
            "SP (crash-stop)",
            Box::new(|| {
                let mut adv = CrashStop::new(4, &[(3, Round(2))]);
                let mut exec = RoundExecutor::new(OneThirdRule::new(4), vec![1, 2, 3, 4]);
                exec.run_until_decided_in(ProcessSet::from_indices(0..3), &mut adv, 50)
                    .ok()
            }),
        ),
        (
            "ST/DT (crash-recovery)",
            Box::new(|| {
                let mut adv = CrashRecovery::new(4, &[(0, Round(1), Round(3))]);
                let mut exec = RoundExecutor::new(OneThirdRule::new(4), vec![1, 2, 3, 4]);
                exec.run_until_all_decided(&mut adv, 50).ok()
            }),
        ),
        (
            "DT (loss)",
            Box::new(|| {
                let mut adv = RandomLoss::new(0.3, 5);
                let mut exec = RoundExecutor::new(OneThirdRule::new(4), vec![1, 2, 3, 4]);
                exec.run_until_all_decided(&mut adv, 200).ok()
            }),
        ),
    ];
    for (name, mut run) in runs {
        assert!(run().is_some(), "{name}: OTR must decide");
    }
}
