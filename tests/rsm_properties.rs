//! Property suite for the replicated-log service: across the full
//! adversary zoo, every replica applies an identical log prefix, no
//! command is applied twice, and nothing decided is ever dropped.
//!
//! The grid is the ISSUE's contract: 50 seeds × the full zoo ×
//! n ∈ {4, 7, 13} × pipeline depths {1, 4, 16}, checked by the
//! deterministic applied-log oracle (`ho_rsm::check_logs`) inside every
//! verdict — a violation anywhere fails the sweep. OneThirdRule carries
//! the full grid (its safety needs no communication predicate);
//! LastVoting covers the zoo on a thinner seed axis (its unicast phases
//! take the fan-out path, so it is the expensive way to order slots);
//! UniformVoting runs under full delivery, the only environment in which
//! pipelined replicas stay in lockstep (see `ho_harness::rsm`).

use heardof::harness::{
    AdversarySpec, AlgorithmSpec, RsmReport, RsmScenario, RsmSweep, WorkloadSpec,
};
use heardof::rsm::{shard_seed, FlowControl, LogDriver, RsmConfig, ShardedLogDriver};

use heardof::core::adversary::{Adversary, RandomLoss};
use heardof::core::algorithms::OneThirdRule;
use heardof::core::contact::{contact_seed, ContactPlan, ContactPlanAdversary};

/// The full adversary zoo (every fault environment the model-layer sweep
/// knows, parameters included).
fn zoo() -> [AdversarySpec; 7] {
    [
        AdversarySpec::FullDelivery,
        AdversarySpec::RandomLoss { loss: 0.2 },
        AdversarySpec::RandomLoss { loss: 0.4 },
        AdversarySpec::Partition { blocks: 2 },
        AdversarySpec::CrashRecovery,
        AdversarySpec::KernelOnly { loss: 0.8 },
        AdversarySpec::EventuallyGood {
            bad_rounds: 6,
            loss: 0.5,
        },
    ]
}

fn assert_all_safe(report: &RsmReport) {
    assert_eq!(
        report.violations,
        0,
        "log invariants violated: {:?}",
        report
            .violating()
            .iter()
            .map(|v| (v.id(), v.violation.clone()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn otr_logs_agree_across_the_zoo_50_seeds() {
    // 7 adversaries × 3 sizes × 3 depths × 50 seeds = 3150 scenarios.
    // Every verdict runs the applied-log oracle: prefix agreement,
    // exactly-once apply, batch integrity.
    let report = RsmSweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule])
        .adversaries(zoo())
        .sizes([4, 7, 13])
        .depths([1, 4, 16])
        .workloads([WorkloadSpec::FixedRate { per_round: 2 }])
        .seeds(0..50)
        .rounds(40)
        .run();
    assert_eq!(report.scenarios, 7 * 3 * 3 * 50);
    assert_all_safe(&report);
    // The zoo may slow the log but the grid as a whole must make heavy
    // progress (full-delivery and eventually-good cells carry it).
    assert!(report.totals.commands > 100_000, "{:?}", report.totals);
}

#[test]
fn lv_logs_agree_across_the_zoo() {
    // LastVoting is safe under arbitrary faults too — coordinator phases
    // multiplexed across slots must never fork the log either.
    let report = RsmSweep::new()
        .algorithms([AlgorithmSpec::LastVoting])
        .adversaries(zoo())
        .sizes([4, 7, 13])
        .depths([1, 4, 16])
        .workloads([WorkloadSpec::ClosedLoop { clients: 8 }])
        .seeds(0..8)
        .rounds(40)
        .run();
    assert_eq!(report.scenarios, 7 * 3 * 3 * 8);
    assert_all_safe(&report);
    assert!(report.totals.commands > 0);
}

#[test]
fn uv_logs_agree_in_lockstep() {
    let report = RsmSweep::new()
        .algorithms([AlgorithmSpec::UniformVoting])
        .adversaries([AdversarySpec::FullDelivery])
        .sizes([4, 7, 13])
        .depths([1, 4, 16])
        .workloads([WorkloadSpec::SkewedKey { per_round: 2 }])
        .seeds(0..50)
        .rounds(40)
        .run();
    assert_all_safe(&report);
    assert!(report.totals.commands > 0);
}

#[test]
fn otr_logs_agree_across_the_zoo_with_leases_on_50_seeds() {
    // The flow-control contract under chaos: slot leases, adaptive
    // batching and admission backpressure change *who proposes batches*,
    // never what the oracle demands — 7 adversaries × 2 sizes × 3 depths
    // × 50 seeds, every verdict through prefix agreement, exactly-once
    // apply and batch integrity with the full stack on.
    let report = RsmSweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule])
        .adversaries(zoo())
        .sizes([4, 7])
        .depths([1, 4, 16])
        .workloads([WorkloadSpec::FixedRate { per_round: 2 }])
        .leases([true])
        .seeds(0..50)
        .rounds(40)
        .run();
    assert_eq!(report.scenarios, 7 * 2 * 3 * 50);
    assert_all_safe(&report);
    assert!(report.totals.commands > 0);
    // The tentpole's point, asserted across every full-delivery cell:
    // the leaseholder always wins its slot under symmetric delivery, so
    // no command is ever batched into a losing proposal.
    let mut full_delivery_cells = 0;
    for v in &report.verdicts {
        if v.adversary == "full_delivery" {
            full_delivery_cells += 1;
            assert_eq!(v.requeued_commands, 0, "{} requeued", v.id());
            assert_eq!(v.lease_takeovers, 0, "{} took over", v.id());
        }
    }
    assert_eq!(full_delivery_cells, 2 * 3 * 50);
}

#[test]
fn lease_off_scenarios_are_bit_identical_to_the_default_driver() {
    // `lease: false` in the sweep must reproduce today's driver exactly
    // — same slots, commands, requeues and latency tail — so the lease
    // axis is a pure before/after comparison, not a new baseline.
    for seed in [0, 7, 42] {
        let mut driver = LogDriver::new(
            OneThirdRule::new(4),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(4),
            seed,
        );
        driver.run(&mut RandomLoss::new(0.3, seed), 60).unwrap();
        let stats = driver.service_stats();

        let v = RsmScenario {
            algorithm: AlgorithmSpec::OneThirdRule,
            adversary: AdversarySpec::RandomLoss { loss: 0.3 },
            n: 4,
            depth: 4,
            shards: 1,
            workload: WorkloadSpec::FixedRate { per_round: 2 },
            lease: false,
            seed,
            rounds: 60,
            telemetry: false,
        }
        .run();
        assert!(v.is_safe(), "seed {seed}: {:?}", v.violation);
        assert_eq!(v.commands, stats.applied_commands, "seed {seed}");
        assert_eq!(v.slots, stats.applied_slots, "seed {seed}");
        assert_eq!(v.requeued_commands, stats.requeued_commands, "seed {seed}");
        assert_eq!(
            v.generated_commands, stats.generated_commands,
            "seed {seed}"
        );
        assert_eq!(v.latency_p99, stats.latency_percentile(99), "seed {seed}");
        assert_eq!(v.lease_takeovers, 0, "seed {seed}");
        assert_eq!(v.deferred_commands, 0, "seed {seed}");
    }
}

#[test]
fn closed_loop_commands_are_conserved_with_flow_control_on() {
    // Conservation survives the full flow-control stack: deferred
    // closed-loop arrivals are retried (never shed), so after a long
    // healthy run the applied count still sits within one window of the
    // generated count, and the admission gate bounded the queue the
    // whole way.
    let mut cfg = RsmConfig::with_depth(4);
    cfg.flow = FlowControl::on();
    let mut driver = LogDriver::new(
        OneThirdRule::new(4),
        WorkloadSpec::ClosedLoop { clients: 6 },
        cfg,
        3,
    );
    driver
        .run(&mut heardof::core::adversary::FullDelivery, 100)
        .unwrap();
    let check = driver.check();
    assert!(check.is_ok(), "{:?}", check.violation);
    let stats = driver.service_stats();
    assert!(stats.applied_commands > 0);
    assert_eq!(stats.requeued_commands, 0, "leases end the churn");
    assert!(
        stats.generated_commands - stats.applied_commands <= 4 * 6,
        "generated {} vs applied {}: more than a window's worth in limbo",
        stats.generated_commands,
        stats.applied_commands
    );
}

#[test]
fn nothing_decided_is_ever_dropped() {
    // "No command dropped after decision", directly: snapshot every
    // replica's applied log mid-chaos, keep running (chaos, then healing),
    // and require every snapshot to be a prefix of the final log — applied
    // entries can never disappear or change, only extend.
    for seed in 0..10 {
        let mut driver = LogDriver::new(
            OneThirdRule::new(5),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(4),
            seed,
        );
        let mut adv = RandomLoss::new(0.4, seed);
        let mut snapshots: Vec<Vec<Vec<u64>>> = Vec::new();
        for _ in 0..6 {
            driver.run(&mut adv, 15).unwrap();
            snapshots.push(driver.applied_logs().iter().map(|l| l.to_vec()).collect());
        }
        driver
            .run(&mut heardof::core::adversary::FullDelivery, 10)
            .unwrap();
        let check = driver.check();
        assert!(check.is_ok(), "seed {seed}: {:?}", check.violation);
        let finals = driver.applied_logs();
        for (t, snap) in snapshots.iter().enumerate() {
            for (p, log) in snap.iter().enumerate() {
                assert_eq!(
                    &finals[p][..log.len()],
                    &log[..],
                    "seed {seed}: replica {p} dropped applied entries after snapshot {t}"
                );
            }
        }
        // After healing, every replica holds the same complete log.
        assert!(finals.iter().all(|l| l.len() == finals[0].len()));
    }
}

#[test]
fn dark_replica_rejoins_without_dropping_anything() {
    // The store-and-forward contract, end to end: one replica is dark for
    // 2000 rounds while the other three keep ordering the log, then it
    // reconnects and must climb back to the frontier through bounded
    // per-bundle backfill — with nothing decided ever dropped, full
    // prefix agreement after catch-up, and the catch-up latency visible
    // as a LogDriver counter.
    for seed in [3, 11, 29] {
        let dark_len = 2000u64;
        let plan = ContactPlan::StoreAndForward {
            dark: dark_len as u32,
        };
        let n = 4;
        let dark = plan.dark_replica(seed, n).index();
        let mut cfg = RsmConfig::with_depth(4);
        // ~2 commands/round for 2600 rounds: budget the applied logs and
        // workload queues up front so reconnection cannot stall on
        // capacity growth mid-measurement.
        cfg.reserve_slots = 4096;
        cfg.reserve_commands = 8192;
        let mut driver = LogDriver::new(
            OneThirdRule::new(n),
            WorkloadSpec::FixedRate { per_round: 2 },
            cfg,
            seed,
        );
        let mut adv = ContactPlanAdversary::new(plan, seed);

        // Phase 1: darkness. The three connected replicas clear the 2/3
        // threshold and keep deciding; the dark one hears only itself,
        // so its applied log freezes while the frontier runs away.
        driver.run(&mut adv, dark_len).unwrap();
        let mid: Vec<Vec<u64>> = driver.applied_logs().iter().map(|l| l.to_vec()).collect();
        let frontier = mid.iter().map(Vec::len).max().unwrap();
        assert!(
            frontier > 100,
            "seed {seed}: the connected majority must keep ordering (frontier {frontier})"
        );
        assert!(
            mid[dark].len() < frontier / 2,
            "seed {seed}: replica {dark} was dark, its log must lag the frontier \
             ({} vs {frontier})",
            mid[dark].len()
        );
        assert!(
            !driver.converged(),
            "seed {seed}: logs diverge mid-darkness"
        );

        // Phase 2: reconnection. Backfill is capped per bundle, so the
        // climb takes at least gap/(peers × cap) rounds — give it the
        // gap's worth and require convergence well inside that.
        let gap = (frontier - mid[dark].len()) as u64;
        driver.run(&mut adv, gap + 50).unwrap();

        let check = driver.check();
        assert!(check.is_ok(), "seed {seed}: {:?}", check.violation);
        let finals = driver.applied_logs();
        // Nothing decided was dropped: every mid-darkness log is a prefix
        // of the corresponding final log.
        for (p, log) in mid.iter().enumerate() {
            assert_eq!(
                &finals[p][..log.len()],
                &log[..],
                "seed {seed}: replica {p} dropped applied entries during catch-up"
            );
        }
        // Full prefix agreement after catch-up: identical complete logs.
        assert!(
            finals.iter().all(|l| l == &finals[0]),
            "seed {seed}: logs did not reconverge after the dark replica rejoined"
        );
        assert!(driver.converged(), "seed {seed}");

        // The catch-up latency counter: convergence is dated after the
        // good suffix began, and within the committed-floor bound — the
        // dark replica adopts at least one backfilled slot per round, so
        // the climb is at most `gap` rounds long.
        let caught_up_at = driver
            .last_convergence_round()
            .expect("seed {seed}: a dark replica that rejoined must have reconverged");
        assert!(
            caught_up_at >= plan.good_from(),
            "seed {seed}: convergence at round {caught_up_at} predates reconnection"
        );
        let catch_up = caught_up_at - (plan.good_from() - 1);
        assert!(
            catch_up <= gap,
            "seed {seed}: catch-up took {catch_up} rounds for a {gap}-slot gap \
             — slower than one backfilled slot per round"
        );
        let stats = driver.service_stats();
        assert!(
            stats.backfill_entries > gap,
            "seed {seed}: the climb must ride backfill ({} entries for a {gap}-slot gap)",
            stats.backfill_entries
        );
    }
}

#[test]
fn contact_seeds_are_pinned_and_thread_count_invariant() {
    // The contact-plan decision stream is part of the reproducibility
    // contract, exactly like `shard_seed`: golden-pin the split so a
    // refactor cannot silently reshuffle every plan's block rotations,
    // contact pairs and dark replicas.
    assert_eq!(contact_seed(42, 0), 0x7d79_4cac_3b31_b670);
    assert_eq!(contact_seed(42, 1), 0xc18a_6a3e_1515_492b);
    assert_eq!(contact_seed(42, 2), 0x8a87_0c04_fc3e_fe55);
    assert_eq!(contact_seed(42, 0x5af0), 0x8627_6d88_d40d_2b7b);
    assert_eq!(contact_seed(0, 0), 0x8209_b480_faed_1b10);

    // And the derived choices stay pinned with it.
    let plan = ContactPlan::StoreAndForward { dark: 8 };
    assert_eq!(plan.dark_replica(42, 4).index(), 3);
    assert_eq!(plan.dark_replica(7, 4).index(), 2);

    // The contact-plan sweep axis must produce identical verdicts —
    // degradation metrics included — at any worker count.
    let sweep = || {
        RsmSweep::new()
            .algorithms([AlgorithmSpec::OneThirdRule])
            .adversaries([
                AdversarySpec::ContactPlan {
                    plan: ContactPlan::Episodic {
                        dark: 3,
                        bright: 2,
                        cycles: 4,
                    },
                },
                AdversarySpec::ContactPlan {
                    plan: ContactPlan::StoreAndForward { dark: 16 },
                },
            ])
            .sizes([4])
            .depths([4])
            .shards([1, 2])
            .workloads([WorkloadSpec::FixedRate { per_round: 2 }])
            .seeds(0..4)
            .rounds(80)
    };
    let single = sweep().threads(1).run();
    let pooled = sweep().threads(4).run();
    let fingerprint = |r: &RsmReport| {
        r.verdicts
            .iter()
            .map(|v| {
                (
                    v.id(),
                    v.slots,
                    v.commands,
                    v.dark_rounds,
                    v.catch_up_rounds,
                    v.backfill_entries,
                    v.divergent_rounds,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(fingerprint(&single), fingerprint(&pooled));
    assert_eq!(single.violations, 0);
}

#[test]
fn sharded_otr_logs_agree_across_the_zoo_50_seeds() {
    // The sharded grid of the ISSUE's contract: 7 adversaries × n ∈ {4, 7}
    // × S ∈ {1, 2, 4, 8} × 50 seeds = 2800 scenarios, every verdict run
    // through the *sharded* oracle — per-shard prefix agreement and
    // exactly-once, namespace containment, cross-shard disjointness.
    let report = RsmSweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule])
        .adversaries(zoo())
        .sizes([4, 7])
        .depths([4])
        .shards([1, 2, 4, 8])
        .workloads([WorkloadSpec::FixedRate { per_round: 2 }])
        .seeds(0..50)
        .rounds(40)
        .run();
    assert_eq!(report.scenarios, 7 * 2 * 4 * 50);
    assert_all_safe(&report);
    assert!(report.totals.commands > 100_000, "{:?}", report.totals);
}

#[test]
fn one_shard_is_the_unsharded_service_in_lockstep() {
    // S = 1 must be *bit-identical* to the plain LogDriver, not merely
    // equivalent: shard 0 keeps the raw scenario seed, the solo spec keeps
    // every key, and namespacing with shard index 0 is the identity. Run
    // both services in interleaved chunks under the same fault schedule
    // and compare the applied logs after every chunk.
    for seed in [0, 7, 42] {
        let mut solo = LogDriver::new(
            OneThirdRule::new(4),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(4),
            seed,
        );
        let mut sharded = ShardedLogDriver::new(
            |_| OneThirdRule::new(4),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(4),
            1,
            seed,
        );
        let mut solo_adv = RandomLoss::new(0.3, seed ^ 0x5eed);
        let mut sharded_advs: Vec<Box<dyn Adversary + Send>> =
            vec![Box::new(RandomLoss::new(0.3, seed ^ 0x5eed))];
        for chunk in 0..5 {
            solo.run(&mut solo_adv, 12).unwrap();
            sharded.run(&mut sharded_advs, 12).unwrap();
            assert_eq!(
                solo.applied_logs(),
                sharded.applied_logs()[0],
                "seed {seed}: S=1 diverged from the unsharded service at chunk {chunk}"
            );
        }
        let solo_stats = solo.service_stats();
        let sharded_stats = sharded.service_stats();
        assert_eq!(
            solo_stats.generated_commands,
            sharded_stats.generated_commands
        );
        assert_eq!(solo_stats.applied_commands, sharded_stats.applied_commands);
        assert_eq!(
            solo_stats.requeued_commands,
            sharded_stats.requeued_commands
        );
        assert_eq!(sharded_stats.routed_away_commands, 0);
    }
}

#[test]
fn shard_seeds_are_pinned_and_thread_count_invariant() {
    // The per-shard seed derivation is part of the reproducibility
    // contract: golden-pin the split so a refactor cannot silently change
    // every sharded scenario's fault schedule, and require the sharded
    // sweep to produce identical verdicts at any worker count.
    assert_eq!(shard_seed(42, 0), 42, "shard 0 keeps the scenario seed");
    assert_eq!(shard_seed(42, 1), 0xbdd7_3226_2feb_6e95);
    assert_eq!(shard_seed(42, 2), 0x28ef_e333_b266_f103);
    assert_eq!(shard_seed(42, 3), 0x4752_6757_130f_9f52);

    let sweep = || {
        RsmSweep::new()
            .algorithms([AlgorithmSpec::OneThirdRule])
            .adversaries([AdversarySpec::RandomLoss { loss: 0.3 }])
            .sizes([4])
            .depths([4])
            .shards([1, 2, 4])
            .workloads([WorkloadSpec::SkewedKey { per_round: 2 }])
            .seeds(0..4)
            .rounds(40)
    };
    let single = sweep().threads(1).run();
    let pooled = sweep().threads(4).run();
    let fingerprint = |r: &RsmReport| {
        r.verdicts
            .iter()
            .map(|v| {
                (
                    v.id(),
                    v.slots,
                    v.commands,
                    v.generated_commands,
                    v.requeued_commands,
                    v.latency_p99,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(fingerprint(&single), fingerprint(&pooled));
    assert_eq!(single.violations, 0);
}

#[test]
fn closed_loop_commands_are_conserved() {
    // Command conservation, end to end: everything a replica generated is
    // either applied (exactly once, by the oracle), still queued/in
    // flight, or was requeued and re-proposed — nothing vanishes. In a
    // closed loop after a long healthy run, the applied count must sit
    // within one window of the generated count.
    let mut driver = LogDriver::new(
        OneThirdRule::new(4),
        WorkloadSpec::ClosedLoop { clients: 6 },
        RsmConfig::with_depth(4),
        3,
    );
    driver
        .run(&mut heardof::core::adversary::FullDelivery, 100)
        .unwrap();
    let check = driver.check();
    assert!(check.is_ok(), "{:?}", check.violation);
    let stats = driver.service_stats();
    assert!(stats.applied_commands > 0);
    assert!(
        stats.generated_commands - stats.applied_commands <= 4 * 6,
        "generated {} vs applied {}: more than a window's worth in limbo",
        stats.generated_commands,
        stats.applied_commands
    );
}
