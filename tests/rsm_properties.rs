//! Property suite for the replicated-log service: across the full
//! adversary zoo, every replica applies an identical log prefix, no
//! command is applied twice, and nothing decided is ever dropped.
//!
//! The grid is the ISSUE's contract: 50 seeds × the full zoo ×
//! n ∈ {4, 7, 13} × pipeline depths {1, 4, 16}, checked by the
//! deterministic applied-log oracle (`ho_rsm::check_logs`) inside every
//! verdict — a violation anywhere fails the sweep. OneThirdRule carries
//! the full grid (its safety needs no communication predicate);
//! LastVoting covers the zoo on a thinner seed axis (its unicast phases
//! take the fan-out path, so it is the expensive way to order slots);
//! UniformVoting runs under full delivery, the only environment in which
//! pipelined replicas stay in lockstep (see `ho_harness::rsm`).

use heardof::harness::{AdversarySpec, AlgorithmSpec, RsmReport, RsmSweep, WorkloadSpec};
use heardof::rsm::{shard_seed, LogDriver, RsmConfig, ShardedLogDriver};

use heardof::core::adversary::{Adversary, RandomLoss};
use heardof::core::algorithms::OneThirdRule;

/// The full adversary zoo (every fault environment the model-layer sweep
/// knows, parameters included).
fn zoo() -> [AdversarySpec; 7] {
    [
        AdversarySpec::FullDelivery,
        AdversarySpec::RandomLoss { loss: 0.2 },
        AdversarySpec::RandomLoss { loss: 0.4 },
        AdversarySpec::Partition { blocks: 2 },
        AdversarySpec::CrashRecovery,
        AdversarySpec::KernelOnly { loss: 0.8 },
        AdversarySpec::EventuallyGood {
            bad_rounds: 6,
            loss: 0.5,
        },
    ]
}

fn assert_all_safe(report: &RsmReport) {
    assert_eq!(
        report.violations,
        0,
        "log invariants violated: {:?}",
        report
            .violating()
            .iter()
            .map(|v| (v.id(), v.violation.clone()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn otr_logs_agree_across_the_zoo_50_seeds() {
    // 7 adversaries × 3 sizes × 3 depths × 50 seeds = 3150 scenarios.
    // Every verdict runs the applied-log oracle: prefix agreement,
    // exactly-once apply, batch integrity.
    let report = RsmSweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule])
        .adversaries(zoo())
        .sizes([4, 7, 13])
        .depths([1, 4, 16])
        .workloads([WorkloadSpec::FixedRate { per_round: 2 }])
        .seeds(0..50)
        .rounds(40)
        .run();
    assert_eq!(report.scenarios, 7 * 3 * 3 * 50);
    assert_all_safe(&report);
    // The zoo may slow the log but the grid as a whole must make heavy
    // progress (full-delivery and eventually-good cells carry it).
    assert!(report.totals.commands > 100_000, "{:?}", report.totals);
}

#[test]
fn lv_logs_agree_across_the_zoo() {
    // LastVoting is safe under arbitrary faults too — coordinator phases
    // multiplexed across slots must never fork the log either.
    let report = RsmSweep::new()
        .algorithms([AlgorithmSpec::LastVoting])
        .adversaries(zoo())
        .sizes([4, 7, 13])
        .depths([1, 4, 16])
        .workloads([WorkloadSpec::ClosedLoop { clients: 8 }])
        .seeds(0..8)
        .rounds(40)
        .run();
    assert_eq!(report.scenarios, 7 * 3 * 3 * 8);
    assert_all_safe(&report);
    assert!(report.totals.commands > 0);
}

#[test]
fn uv_logs_agree_in_lockstep() {
    let report = RsmSweep::new()
        .algorithms([AlgorithmSpec::UniformVoting])
        .adversaries([AdversarySpec::FullDelivery])
        .sizes([4, 7, 13])
        .depths([1, 4, 16])
        .workloads([WorkloadSpec::SkewedKey { per_round: 2 }])
        .seeds(0..50)
        .rounds(40)
        .run();
    assert_all_safe(&report);
    assert!(report.totals.commands > 0);
}

#[test]
fn nothing_decided_is_ever_dropped() {
    // "No command dropped after decision", directly: snapshot every
    // replica's applied log mid-chaos, keep running (chaos, then healing),
    // and require every snapshot to be a prefix of the final log — applied
    // entries can never disappear or change, only extend.
    for seed in 0..10 {
        let mut driver = LogDriver::new(
            OneThirdRule::new(5),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(4),
            seed,
        );
        let mut adv = RandomLoss::new(0.4, seed);
        let mut snapshots: Vec<Vec<Vec<u64>>> = Vec::new();
        for _ in 0..6 {
            driver.run(&mut adv, 15).unwrap();
            snapshots.push(driver.applied_logs().iter().map(|l| l.to_vec()).collect());
        }
        driver
            .run(&mut heardof::core::adversary::FullDelivery, 10)
            .unwrap();
        let check = driver.check();
        assert!(check.is_ok(), "seed {seed}: {:?}", check.violation);
        let finals = driver.applied_logs();
        for (t, snap) in snapshots.iter().enumerate() {
            for (p, log) in snap.iter().enumerate() {
                assert_eq!(
                    &finals[p][..log.len()],
                    &log[..],
                    "seed {seed}: replica {p} dropped applied entries after snapshot {t}"
                );
            }
        }
        // After healing, every replica holds the same complete log.
        assert!(finals.iter().all(|l| l.len() == finals[0].len()));
    }
}

#[test]
fn sharded_otr_logs_agree_across_the_zoo_50_seeds() {
    // The sharded grid of the ISSUE's contract: 7 adversaries × n ∈ {4, 7}
    // × S ∈ {1, 2, 4, 8} × 50 seeds = 2800 scenarios, every verdict run
    // through the *sharded* oracle — per-shard prefix agreement and
    // exactly-once, namespace containment, cross-shard disjointness.
    let report = RsmSweep::new()
        .algorithms([AlgorithmSpec::OneThirdRule])
        .adversaries(zoo())
        .sizes([4, 7])
        .depths([4])
        .shards([1, 2, 4, 8])
        .workloads([WorkloadSpec::FixedRate { per_round: 2 }])
        .seeds(0..50)
        .rounds(40)
        .run();
    assert_eq!(report.scenarios, 7 * 2 * 4 * 50);
    assert_all_safe(&report);
    assert!(report.totals.commands > 100_000, "{:?}", report.totals);
}

#[test]
fn one_shard_is_the_unsharded_service_in_lockstep() {
    // S = 1 must be *bit-identical* to the plain LogDriver, not merely
    // equivalent: shard 0 keeps the raw scenario seed, the solo spec keeps
    // every key, and namespacing with shard index 0 is the identity. Run
    // both services in interleaved chunks under the same fault schedule
    // and compare the applied logs after every chunk.
    for seed in [0, 7, 42] {
        let mut solo = LogDriver::new(
            OneThirdRule::new(4),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(4),
            seed,
        );
        let mut sharded = ShardedLogDriver::new(
            |_| OneThirdRule::new(4),
            WorkloadSpec::FixedRate { per_round: 2 },
            RsmConfig::with_depth(4),
            1,
            seed,
        );
        let mut solo_adv = RandomLoss::new(0.3, seed ^ 0x5eed);
        let mut sharded_advs: Vec<Box<dyn Adversary + Send>> =
            vec![Box::new(RandomLoss::new(0.3, seed ^ 0x5eed))];
        for chunk in 0..5 {
            solo.run(&mut solo_adv, 12).unwrap();
            sharded.run(&mut sharded_advs, 12).unwrap();
            assert_eq!(
                solo.applied_logs(),
                sharded.applied_logs()[0],
                "seed {seed}: S=1 diverged from the unsharded service at chunk {chunk}"
            );
        }
        let solo_stats = solo.service_stats();
        let sharded_stats = sharded.service_stats();
        assert_eq!(
            solo_stats.generated_commands,
            sharded_stats.generated_commands
        );
        assert_eq!(solo_stats.applied_commands, sharded_stats.applied_commands);
        assert_eq!(
            solo_stats.requeued_commands,
            sharded_stats.requeued_commands
        );
        assert_eq!(sharded_stats.routed_away_commands, 0);
    }
}

#[test]
fn shard_seeds_are_pinned_and_thread_count_invariant() {
    // The per-shard seed derivation is part of the reproducibility
    // contract: golden-pin the split so a refactor cannot silently change
    // every sharded scenario's fault schedule, and require the sharded
    // sweep to produce identical verdicts at any worker count.
    assert_eq!(shard_seed(42, 0), 42, "shard 0 keeps the scenario seed");
    assert_eq!(shard_seed(42, 1), 0xbdd7_3226_2feb_6e95);
    assert_eq!(shard_seed(42, 2), 0x28ef_e333_b266_f103);
    assert_eq!(shard_seed(42, 3), 0x4752_6757_130f_9f52);

    let sweep = || {
        RsmSweep::new()
            .algorithms([AlgorithmSpec::OneThirdRule])
            .adversaries([AdversarySpec::RandomLoss { loss: 0.3 }])
            .sizes([4])
            .depths([4])
            .shards([1, 2, 4])
            .workloads([WorkloadSpec::SkewedKey { per_round: 2 }])
            .seeds(0..4)
            .rounds(40)
    };
    let single = sweep().threads(1).run();
    let pooled = sweep().threads(4).run();
    let fingerprint = |r: &RsmReport| {
        r.verdicts
            .iter()
            .map(|v| {
                (
                    v.id(),
                    v.slots,
                    v.commands,
                    v.generated_commands,
                    v.requeued_commands,
                    v.latency_p99,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(fingerprint(&single), fingerprint(&pooled));
    assert_eq!(single.violations, 0);
}

#[test]
fn closed_loop_commands_are_conserved() {
    // Command conservation, end to end: everything a replica generated is
    // either applied (exactly once, by the oracle), still queued/in
    // flight, or was requeued and re-proposed — nothing vanishes. In a
    // closed loop after a long healthy run, the applied count must sit
    // within one window of the generated count.
    let mut driver = LogDriver::new(
        OneThirdRule::new(4),
        WorkloadSpec::ClosedLoop { clients: 6 },
        RsmConfig::with_depth(4),
        3,
    );
    driver
        .run(&mut heardof::core::adversary::FullDelivery, 100)
        .unwrap();
    let check = driver.check();
    assert!(check.is_ok(), "{:?}", check.violation);
    let stats = driver.service_stats();
    assert!(stats.applied_commands > 0);
    assert!(
        stats.generated_commands - stats.applied_commands <= 4 * 6,
        "generated {} vs applied {}: more than a window's worth in limbo",
        stats.generated_commands,
        stats.applied_commands
    );
}
